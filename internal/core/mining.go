package core

import (
	"runtime"
	"sort"

	"giant/internal/clickgraph"
	"giant/internal/nlp"
	"giant/internal/par"
	"giant/internal/phrase"
	"giant/internal/synth"
)

// Mined is one attention phrase mined from the click graph (Algorithm 1
// output), before ontology assembly.
type Mined struct {
	Phrase  string
	Aliases []string
	IsEvent bool
	Seed    string // the seed query of the cluster
	Day     int    // earliest doc day in the cluster (event time proxy)

	// Event attributes recognized by the 4-class model.
	Entities []string
	Trigger  string
	Location string

	Queries []string
	Titles  []string
	DocIDs  []int
}

// Miner runs Algorithm 1: random-walk clustering, GCTSP-Net phrase
// extraction, key-element recognition and phrase normalization.
type Miner struct {
	Phrase *Model // 2-class phrase extractor
	Keys   *Model // 4-class key-element recognizer
	Lex    *nlp.Lexicon
	// MergeThreshold is δm for normalization (TF-IDF context similarity).
	MergeThreshold float64
	Walk           clickgraph.WalkConfig
	// Parallelism bounds the worker pool that mines clusters; <= 0 means
	// runtime.GOMAXPROCS(0). Any value yields byte-identical output: the
	// per-cluster work is sharded, candidates are merged in seed-query order,
	// and normalization stays a single deterministic pass.
	Parallelism int
}

// NewMiner wires a trained phrase model and key-element model.
func NewMiner(phraseModel, keyModel *Model, lex *nlp.Lexicon) *Miner {
	walk := clickgraph.DefaultWalkConfig()
	// Keep cluster sizes in the range the node classifier was trained on
	// (the CMD/EMD examples carry 2-4 queries and 2-4 titles); larger
	// clusters shift the feature distribution and hurt precision.
	walk.MaxItems = 4
	return &Miner{
		Phrase:         phraseModel,
		Keys:           keyModel,
		Lex:            lex,
		MergeThreshold: 0.35,
		Walk:           walk,
	}
}

// workers resolves the effective worker-pool size.
func (m *Miner) workers() int {
	if m.Parallelism > 0 {
		return m.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// cand is one mined candidate with its normalization context.
type cand struct {
	mined Mined
	ctx   []string
}

// mineCluster runs the per-cluster portion of Algorithm 1 — phrase
// extraction, concept/event classification, context collection — and returns
// nil when the cluster yields no phrase. It only reads shared state (trained
// models, lexicon, click graph), so the miner can shard clusters freely.
func (m *Miner) mineCluster(g *clickgraph.Graph, cl *clickgraph.Cluster) *cand {
	queries := make([]string, 0, len(cl.Queries))
	for _, q := range cl.Queries {
		queries = append(queries, q.Text)
	}
	titles := make([]string, 0, len(cl.Titles))
	docIDs := make([]int, 0, len(cl.Titles))
	day := -1
	for _, t := range cl.Titles {
		titles = append(titles, t.Text)
		docIDs = append(docIDs, t.DocID)
		if day == -1 || t.Day < day {
			day = t.Day
		}
	}
	if len(queries) == 0 || len(titles) == 0 {
		return nil
	}
	p := m.Phrase.ExtractPhrase(queries, titles)
	if p == "" {
		return nil
	}
	mined := Mined{
		Phrase: p, Seed: cl.Seed, Day: day,
		Queries: queries, Titles: titles, DocIDs: docIDs,
	}
	m.classify(&mined)
	return &cand{mined, g.TopTitlesFor(cl.Seed, 5)}
}

// mineClusters fans the clusters out over the worker pool and merges the
// results into a deterministic order (sorted by seed query — seeds are unique
// per cluster, so the order is total and independent of scheduling).
func (m *Miner) mineClusters(g *clickgraph.Graph, clusters []clickgraph.Cluster) []cand {
	results := make([]*cand, len(clusters))
	par.ForEachIndexed(m.workers(), len(clusters), func(i int) {
		results[i] = m.mineCluster(g, &clusters[i])
	})
	cands := make([]cand, 0, len(clusters))
	for _, r := range results {
		if r != nil {
			cands = append(cands, *r)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].mined.Seed < cands[j].mined.Seed })
	return cands
}

// Mine runs the pipeline over every query cluster in the click graph and
// returns deduplicated attention phrases. The cluster walks and the
// per-cluster GCTSP-Net inference are sharded over a pool of
// Miner.Parallelism workers; the output is identical for every pool size.
func (m *Miner) Mine(g *clickgraph.Graph) []Mined {
	clusters := g.ClustersN(m.Walk, m.workers())
	return m.normalize(m.mineClusters(g, clusters))
}

// MineSharded runs Algorithm 1 with the cluster walks and per-cluster
// inference partitioned by a click-graph shard assignment: each shard's
// queries are walked and mined as a contiguous block of the worker pool's
// work list. Because connected clusters never straddle shards, the cluster
// set is exactly Mine's; candidates still merge in seed order and
// normalization stays a single global pass, so the output is identical to
// Mine for every shard assignment (sharding changes scheduling, never
// results).
func (m *Miner) MineSharded(g *clickgraph.Graph, sh *clickgraph.Sharding) []Mined {
	if sh == nil || sh.K() <= 1 {
		return m.Mine(g)
	}
	var ordered []string
	for _, qs := range sh.QueriesOf(g.Queries()) {
		ordered = append(ordered, qs...)
	}
	slots := make([]*clickgraph.Cluster, len(ordered))
	par.ForEachIndexed(m.workers(), len(ordered), func(i int) {
		if cl, ok := g.ClusterFor(ordered[i], m.Walk); ok {
			slots[i] = &cl
		}
	})
	clusters := make([]clickgraph.Cluster, 0, len(ordered))
	for _, s := range slots {
		if s != nil {
			clusters = append(clusters, *s)
		}
	}
	return m.normalize(m.mineClusters(g, clusters))
}

// MineSeeds runs the same pipeline restricted to the clusters of the given
// seed queries — the incremental path: after a batch of new click edges,
// only the affected neighbourhood (see clickgraph.AffectedQueries) needs
// re-mining. Unknown seeds are skipped. Normalization is batch-local:
// near-duplicate merging happens within the returned set, while merging
// against already-published attention nodes is the delta layer's job
// (alias lookups against the current snapshot).
func (m *Miner) MineSeeds(g *clickgraph.Graph, seeds []string) []Mined {
	ordered := append([]string(nil), seeds...)
	sort.Strings(ordered)
	// Drop duplicate seeds so repeated inputs cannot double-mine a cluster.
	uniq := ordered[:0]
	for i, s := range ordered {
		if i == 0 || s != ordered[i-1] {
			uniq = append(uniq, s)
		}
	}
	ordered = uniq
	clusters := make([]clickgraph.Cluster, 0, len(ordered))
	slots := make([]*clickgraph.Cluster, len(ordered))
	par.ForEachIndexed(m.workers(), len(ordered), func(i int) {
		if cl, ok := g.ClusterFor(ordered[i], m.Walk); ok {
			slots[i] = &cl
		}
	})
	for _, s := range slots {
		if s != nil {
			clusters = append(clusters, *s)
		}
	}
	return m.normalize(m.mineClusters(g, clusters))
}

// normalize runs phrase normalization over seed-ordered candidates and
// merges near-duplicates into canonical Mined entries.
func (m *Miner) normalize(cands []cand) []Mined {
	// Normalization: a single deterministic pass over the seed-ordered
	// candidates. Observe feeds every context into the TF-IDF statistics
	// (commutative) before any Add decides merges.
	norm := phrase.NewNormalizer(m.Lex, m.MergeThreshold)
	for i := range cands {
		norm.Observe(cands[i].mined.Phrase, cands[i].ctx)
	}

	// Merge near-duplicates into canonical nodes.
	byCanon := map[string]*Mined{}
	var order []string
	for i := range cands {
		c := &cands[i]
		canonical, merged := norm.Add(c.mined.Phrase, c.ctx)
		if existing, ok := byCanon[canonical]; ok && merged {
			if c.mined.Phrase != canonical {
				existing.Aliases = append(existing.Aliases, c.mined.Phrase)
			}
			if c.mined.Day >= 0 && (existing.Day < 0 || c.mined.Day < existing.Day) {
				existing.Day = c.mined.Day
			}
			continue
		}
		mc := c.mined
		byCanon[canonical] = &mc
		order = append(order, canonical)
	}
	out := make([]Mined, 0, len(order))
	for _, k := range order {
		out = append(out, *byCanon[k])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phrase < out[j].Phrase })
	return out
}

// classify decides concept-vs-event for a mined phrase and, for events,
// recognizes key elements with the 4-class model. A phrase is an event when
// it contains a non-stop verb (trigger) — concepts are noun phrases.
func (m *Miner) classify(mined *Mined) {
	toks := m.Lex.Annotate(mined.Phrase)
	hasVerb := false
	for _, t := range toks {
		if t.POS == nlp.PosVerb && !t.Stop {
			hasVerb = true
			break
		}
	}
	if !hasVerb {
		return
	}
	mined.IsEvent = true
	if m.Keys == nil {
		return
	}
	classes := m.Keys.KeyElements(mined.Queries, mined.Titles)
	seenEnt := map[string]bool{}
	var locToks []string
	for _, t := range toks {
		switch classes[t.Text] {
		case synth.KeyEntity:
			if !seenEnt[t.Text] {
				seenEnt[t.Text] = true
				mined.Entities = append(mined.Entities, t.Text)
			}
		case synth.KeyTrigger:
			if mined.Trigger == "" {
				mined.Trigger = t.Text
			}
		case synth.KeyLocation:
			locToks = append(locToks, t.Text)
		}
	}
	if len(locToks) > 0 {
		mined.Location = nlp.JoinTokens(locToks)
	}
}
