package core

import (
	"sort"

	"giant/internal/atsp"
	"giant/internal/nlp"
	"giant/internal/nn"
	"giant/internal/qtig"
	"giant/internal/rgcn"
	"giant/internal/synth"
)

// Options configure a GCTSP-Net instance. Zero values fall back to the
// paper's settings (5 R-GCN layers, hidden 32, 5 bases).
type Options struct {
	Hidden    int
	Layers    int
	Bases     int
	Epochs    int
	LR        float64
	Seed      int64
	PosWeight float64 // loss weight of the positive class (phrase task)
	// Fallback selects the highest-probability token when no node is
	// classified positive, keeping coverage at 1 (used for concepts).
	Fallback bool
	// DisableATSP orders positive nodes by graph insertion order instead of
	// ATSP decoding (ablation).
	DisableATSP bool
	Build       qtig.BuildOptions
	Mask        FeatureMask
}

func (o Options) withDefaults() Options {
	if o.Hidden == 0 {
		o.Hidden = 32
	}
	if o.Layers == 0 {
		o.Layers = 5
	}
	if o.Bases == 0 {
		o.Bases = 5
	}
	if o.Epochs == 0 {
		o.Epochs = 8
	}
	if o.LR == 0 {
		o.LR = 0.01
	}
	if o.PosWeight == 0 {
		o.PosWeight = 3
	}
	return o
}

// Model is a GCTSP-Net: an R-GCN node classifier over QTIGs plus ATSP
// decoding. Classes is 2 for phrase extraction, 4 for key-element
// recognition.
type Model struct {
	Opt     Options
	Classes int
	R       *rgcn.Model
	Lex     *nlp.Lexicon
}

// NewPhraseModel builds a 2-class (in-phrase / out-of-phrase) GCTSP-Net.
func NewPhraseModel(lex *nlp.Lexicon, opt Options) *Model {
	opt = opt.withDefaults()
	return &Model{
		Opt: opt, Classes: 2, Lex: lex,
		R: rgcn.New(rgcn.Config{
			NumRel: qtig.NumRelations, In: FeatureDim,
			Hidden: opt.Hidden, Layers: opt.Layers, Bases: opt.Bases,
			Classes: 2, Seed: opt.Seed + 1,
		}),
	}
}

// NewKeyElementModel builds the 4-class (other/entity/trigger/location)
// GCTSP-Net used for event key-element recognition (§3.2). ATSP decoding is
// not used in this mode.
func NewKeyElementModel(lex *nlp.Lexicon, opt Options) *Model {
	opt = opt.withDefaults()
	return &Model{
		Opt: opt, Classes: int(synth.NumKeyClasses), Lex: lex,
		R: rgcn.New(rgcn.Config{
			NumRel: qtig.NumRelations, In: FeatureDim,
			Hidden: opt.Hidden, Layers: opt.Layers, Bases: opt.Bases,
			Classes: int(synth.NumKeyClasses), Seed: opt.Seed + 2,
		}),
	}
}

// BuildGraph annotates a query-doc cluster and constructs its QTIG.
func (m *Model) BuildGraph(queries, titles []string) *qtig.Graph {
	qs := make([][]nlp.Token, 0, len(queries))
	for _, q := range queries {
		qs = append(qs, m.Lex.Annotate(q))
	}
	ts := make([][]nlp.Token, 0, len(titles))
	for _, t := range titles {
		ts = append(ts, m.Lex.Annotate(t))
	}
	return qtig.Build(qs, ts, m.Opt.Build)
}

// graphForExample builds the (QTIG, featurized+labelled GraphData) pair for
// one mining example.
func (m *Model) graphForExample(ex *synth.MiningExample) (*qtig.Graph, *rgcn.GraphData) {
	g := m.BuildGraph(ex.Queries, ex.Titles)
	data := Featurize(g, m.Opt.Mask)
	if m.Classes == 2 {
		data.Labels = g.LabelNodes(ex.GoldTokens)
	} else {
		labels := make([]int, len(g.Nodes))
		for i, node := range g.Nodes {
			if node.IsSOS || node.IsEOS {
				labels[i] = int(synth.KeyOther)
				continue
			}
			labels[i] = int(ex.KeyLabelOf(node.Token.Text))
		}
		data.Labels = labels
	}
	return g, data
}

// Train fits the node classifier on mining examples.
func (m *Model) Train(examples []synth.MiningExample) {
	graphs := make([]*rgcn.GraphData, 0, len(examples))
	for i := range examples {
		_, d := m.graphForExample(&examples[i])
		graphs = append(graphs, d)
	}
	var cw []float64
	if m.Classes == 2 {
		cw = []float64{1, m.Opt.PosWeight}
	} else {
		cw = []float64{1, m.Opt.PosWeight, m.Opt.PosWeight, m.Opt.PosWeight}
	}
	m.R.Train(graphs, rgcn.TrainOptions{Epochs: m.Opt.Epochs, LR: m.Opt.LR, ClassWeight: cw})
}

// ExtractPhrase runs the full GCTSP-Net on a query-doc cluster: classify
// nodes, then ATSP-order the positives into a phrase. Returns "" when no
// node is positive and fallback is disabled.
func (m *Model) ExtractPhrase(queries, titles []string) string {
	g := m.BuildGraph(queries, titles)
	data := Featurize(g, m.Opt.Mask)
	probs := m.R.PredictProbs(data)
	positive := m.positiveNodes(g, probs)
	if len(positive) == 0 {
		return ""
	}
	ordered := m.orderNodes(g, positive)
	words := make([]string, 0, len(ordered))
	for _, v := range ordered {
		words = append(words, g.Nodes[v].Token.Text)
	}
	return nlp.JoinTokens(words)
}

func (m *Model) positiveNodes(g *qtig.Graph, probs *nn.Mat) []int {
	var positive []int
	bestProb, bestNode := 0.0, -1
	for v := range g.Nodes {
		if g.Nodes[v].IsSOS || g.Nodes[v].IsEOS {
			continue
		}
		p := probs.At(v, 1)
		if m.Classes > 2 {
			p = 1 - probs.At(v, 0)
		}
		if p > 0.5 {
			positive = append(positive, v)
		}
		if p > bestProb {
			bestProb, bestNode = p, v
		}
	}
	if len(positive) == 0 && m.Opt.Fallback && bestNode >= 0 {
		positive = []int{bestNode}
	}
	return positive
}

// orderNodes sorts positive nodes into output order, via ATSP decoding or
// (ablation) insertion order.
func (m *Model) orderNodes(g *qtig.Graph, positive []int) []int {
	if m.Opt.DisableATSP || len(positive) == 1 {
		out := append([]int(nil), positive...)
		sort.Ints(out)
		return out
	}
	nodes, dist := g.ATSPDistances(positive)
	order := atsp.SolvePath(dist)
	out := make([]int, 0, len(positive))
	for _, idx := range order {
		v := nodes[idx]
		if v == g.SOS || v == g.EOS {
			continue
		}
		out = append(out, v)
	}
	return out
}

// ExtractFromExample extracts the phrase for a dataset example.
func (m *Model) ExtractFromExample(ex *synth.MiningExample) string {
	return m.ExtractPhrase(ex.Queries, ex.Titles)
}

// KeyElements classifies each node of the cluster's QTIG into key-element
// classes, returning token → class (specials omitted).
func (m *Model) KeyElements(queries, titles []string) map[string]synth.KeyClass {
	g := m.BuildGraph(queries, titles)
	data := Featurize(g, m.Opt.Mask)
	pred := m.R.Predict(data)
	out := make(map[string]synth.KeyClass, len(g.Nodes))
	for v, node := range g.Nodes {
		if node.IsSOS || node.IsEOS {
			continue
		}
		out[node.Token.Text] = synth.KeyClass(pred[v])
	}
	return out
}
