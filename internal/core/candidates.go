package core

import (
	"sort"
	"strings"

	"giant/internal/nlp"
)

// seedPatterns are the bootstrap seeds for pattern-concept duality (§3.1,
// "Training Dataset Construction"). "X" marks the concept slot.
var seedPatterns = []string{
	"best X",
	"what are the X ?",
	"top 10 X",
	"X list",
	"recommended X",
}

// Bootstrapper mines concepts from queries by pattern-concept duality:
// patterns extract concepts, and queries containing known concepts yield new
// patterns, iterating until a fixed point (or maxRounds).
type Bootstrapper struct {
	Patterns  []string
	Concepts  map[string]bool
	MaxRounds int
	// MinPatternSupport is how many distinct concepts a candidate pattern
	// must extract before it is adopted.
	MinPatternSupport int
}

// NewBootstrapper starts from the seed patterns.
func NewBootstrapper() *Bootstrapper {
	return &Bootstrapper{
		Patterns:          append([]string(nil), seedPatterns...),
		Concepts:          make(map[string]bool),
		MaxRounds:         4,
		MinPatternSupport: 2,
	}
}

// matchPattern returns the concept extracted from query under pattern, or
// "" on no match. Both are token sequences; "X" greedily matches >=1 token.
func matchPattern(pattern, query string) string {
	pt := strings.Fields(pattern)
	qt := nlp.Tokenize(query)
	xi := -1
	for i, t := range pt {
		if t == "X" {
			xi = i
			break
		}
	}
	if xi < 0 {
		return ""
	}
	prefix, suffix := pt[:xi], pt[xi+1:]
	if len(qt) < len(prefix)+len(suffix)+1 {
		return ""
	}
	for i, t := range prefix {
		if qt[i] != t {
			return ""
		}
	}
	for i, t := range suffix {
		if qt[len(qt)-len(suffix)+i] != t {
			return ""
		}
	}
	x := qt[len(prefix) : len(qt)-len(suffix)]
	if len(x) == 0 {
		return ""
	}
	for _, t := range x {
		if nlp.IsStopWord(t) && len(x) == 1 {
			return ""
		}
	}
	return strings.Join(x, " ")
}

// Run iterates pattern→concept and concept→pattern extraction over the
// query stream and returns all discovered concepts.
func (b *Bootstrapper) Run(queries []string) []string {
	for round := 0; round < b.MaxRounds; round++ {
		grewConcepts := false
		for _, q := range queries {
			for _, p := range b.Patterns {
				if c := matchPattern(p, q); c != "" && !b.Concepts[c] {
					b.Concepts[c] = true
					grewConcepts = true
				}
			}
		}
		// Learn new patterns: replace a known concept inside a query by X.
		candidate := map[string]map[string]bool{}
		for _, q := range queries {
			qt := nlp.Tokenize(q)
			qs := strings.Join(qt, " ")
			for c := range b.Concepts {
				if i := strings.Index(" "+qs+" ", " "+c+" "); i >= 0 {
					pat := strings.TrimSpace(strings.Replace(" "+qs+" ", " "+c+" ", " X ", 1))
					if pat == "X" {
						continue
					}
					if candidate[pat] == nil {
						candidate[pat] = map[string]bool{}
					}
					candidate[pat][c] = true
				}
			}
		}
		grewPatterns := false
		have := map[string]bool{}
		for _, p := range b.Patterns {
			have[p] = true
		}
		for pat, support := range candidate {
			if len(support) >= b.MinPatternSupport && !have[pat] {
				b.Patterns = append(b.Patterns, pat)
				grewPatterns = true
			}
		}
		if !grewConcepts && !grewPatterns {
			break
		}
	}
	out := make([]string, 0, len(b.Concepts))
	for c := range b.Concepts {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MatchExtract is the "Match" baseline: extract a concept from a single
// cluster with bootstrapped patterns (most frequent result across queries).
func MatchExtract(patterns []string, queries []string) string {
	counts := map[string]int{}
	for _, q := range queries {
		for _, p := range patterns {
			if c := matchPattern(p, q); c != "" {
				counts[c]++
			}
		}
	}
	return mostFrequent(counts)
}

// AlignExtract is the query-title alignment strategy (§3.1): find a chunk of
// a clicked title that contains the query's non-stop tokens in order,
// possibly with extra tokens inside the span; the chunk is the candidate
// concept. Titles should be ordered by click weight; the first match wins.
func AlignExtract(query string, titles []string) string {
	qt := contentTokens(nlp.Tokenize(query))
	if len(qt) == 0 {
		return ""
	}
	for _, title := range titles {
		tt := nlp.Tokenize(title)
		if chunk := alignChunk(qt, tt); chunk != "" {
			return chunk
		}
	}
	return ""
}

// alignChunk returns the smallest title span containing all query tokens in
// order.
func alignChunk(queryTokens, titleTokens []string) string {
	n := len(titleTokens)
	for start := 0; start < n; start++ {
		if titleTokens[start] != queryTokens[0] {
			continue
		}
		qi := 0
		end := -1
		for i := start; i < n && qi < len(queryTokens); i++ {
			if titleTokens[i] == queryTokens[qi] {
				qi++
				end = i
			}
		}
		if qi == len(queryTokens) {
			span := titleTokens[start : end+1]
			// A concept chunk should be noun-phrase-like: reject spans with
			// sentence punctuation inside.
			for _, t := range span {
				if t == "." || t == "," || t == ":" || t == "?" {
					return ""
				}
			}
			return strings.Join(span, " ")
		}
	}
	return ""
}

// MatchAlignExtract combines pattern matching and alignment, returning the
// most frequent extraction (the "MatchAlign" baseline).
func MatchAlignExtract(patterns []string, queries, titles []string) string {
	counts := map[string]int{}
	for _, q := range queries {
		for _, p := range patterns {
			if c := matchPattern(p, q); c != "" {
				counts[c]++
			}
		}
		if c := AlignExtract(q, titles); c != "" {
			counts[c]++
		}
	}
	return mostFrequent(counts)
}

// CoverRankExtract is the unsupervised event candidate strategy (§3.1 and
// the CoverRank baseline of Table 6): split titles into subtitles at
// punctuation, keep those with length in [minLen, maxLen] tokens, score by
// the number of unique non-stop query tokens covered, tie-break by click
// count, and return the top subtitle.
func CoverRankExtract(queries, titles []string, clicks []int, minLen, maxLen int) string {
	queryTokens := map[string]bool{}
	for _, q := range queries {
		for _, t := range nlp.Tokenize(q) {
			if !nlp.IsStopWord(t) {
				queryTokens[t] = true
			}
		}
	}
	best, bestScore, bestClicks := "", -1, -1
	for ti, title := range titles {
		c := 0
		if ti < len(clicks) {
			c = clicks[ti]
		}
		for _, sub := range SplitSubtitles(title) {
			toks := nlp.Tokenize(sub)
			if len(toks) < minLen || len(toks) > maxLen {
				continue
			}
			seen := map[string]bool{}
			score := 0
			for _, t := range toks {
				if queryTokens[t] && !seen[t] {
					seen[t] = true
					score++
				}
			}
			if score > bestScore || (score == bestScore && c > bestClicks) {
				best, bestScore, bestClicks = strings.Join(toks, " "), score, c
			}
		}
	}
	return best
}

// SplitSubtitles splits a document title into clause-level subtitles at
// punctuation, mirroring the paper's subtitle segmentation.
func SplitSubtitles(title string) []string {
	seps := []string{":", ",", "—", "-", "|", "?", "!", ".", ";"}
	parts := []string{title}
	for _, sep := range seps {
		var next []string
		for _, p := range parts {
			next = append(next, strings.Split(p, sep)...)
		}
		parts = next
	}
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func contentTokens(toks []string) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !nlp.IsStopWord(t) {
			out = append(out, t)
		}
	}
	return out
}

func mostFrequent(counts map[string]int) string {
	best, bestN := "", 0
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// Prefer longer phrases on ties: alignment results extend matches.
		if counts[k] > bestN || (counts[k] == bestN && len(k) > len(best)) {
			best, bestN = k, counts[k]
		}
	}
	return best
}
