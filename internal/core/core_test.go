package core

import (
	"strings"
	"testing"

	"giant/internal/clickgraph"
	"giant/internal/synth"
)

func tinyWorld() *synth.World { return synth.GenWorld(synth.TinyConfig()) }

func TestBootstrapperDuality(t *testing.T) {
	b := NewBootstrapper()
	queries := []string{
		"best economy cars",
		"economy cars list",
		"my favorite economy cars today", // pattern to learn
		"my favorite luxury phones today",
		"best luxury phones",
		"my favorite detective novels today",
		"detective novels list",
	}
	concepts := b.Run(queries)
	has := func(c string) bool {
		for _, x := range concepts {
			if x == c {
				return true
			}
		}
		return false
	}
	if !has("economy cars") || !has("luxury phones") {
		t.Fatalf("seed patterns failed: %v", concepts)
	}
	// "my favorite X today" must have been learned from two known concepts
	// and then extract the third.
	if !has("detective novels") {
		t.Fatalf("pattern-concept duality failed: %v", concepts)
	}
}

func TestMatchExtract(t *testing.T) {
	got := MatchExtract([]string{"best X"}, []string{"best economy cars", "unrelated"})
	if got != "economy cars" {
		t.Fatalf("MatchExtract = %q", got)
	}
	if got := MatchExtract([]string{"best X"}, []string{"nothing here"}); got != "" {
		t.Fatalf("MatchExtract on no match = %q", got)
	}
}

func TestAlignExtractFindsDetailedChunk(t *testing.T) {
	// The title contains the query tokens in order with an extra token
	// inside the span — alignment must return the full chunk.
	got := AlignExtract("miyazaki movies", []string{
		"review of miyazaki animated movies tonight",
	})
	if got != "miyazaki animated movies" {
		t.Fatalf("AlignExtract = %q", got)
	}
	// No in-order containment -> no result.
	if got := AlignExtract("movies miyazaki", []string{"review of miyazaki animated movies"}); got != "" {
		t.Fatalf("out-of-order aligned: %q", got)
	}
	// Spans crossing punctuation are rejected.
	if got := AlignExtract("miyazaki movies", []string{"miyazaki retires : his movies remain"}); got != "" {
		t.Fatalf("span across punctuation: %q", got)
	}
}

func TestCoverRankExtract(t *testing.T) {
	queries := []string{"acme release earnings"}
	titles := []string{
		"markets wobble : acme release earnings surprise , analysts react",
		"acme stock moves",
	}
	got := CoverRankExtract(queries, titles, []int{10, 5}, 3, 8)
	if !strings.Contains(got, "acme release earnings") {
		t.Fatalf("CoverRankExtract = %q", got)
	}
}

func TestSplitSubtitles(t *testing.T) {
	subs := SplitSubtitles("breaking : acme release earnings , analysts react")
	if len(subs) != 3 {
		t.Fatalf("subs = %v", subs)
	}
}

func TestFeaturizeDimensions(t *testing.T) {
	w := tinyWorld()
	ex := w.ConceptExamples(1, 1)[0]
	m := NewPhraseModel(w.Lexicon, Options{Epochs: 1, Layers: 2})
	g := m.BuildGraph(ex.Queries, ex.Titles)
	data := Featurize(g, FeatureMask{})
	if data.X.R != len(g.Nodes) || data.X.C != FeatureDim {
		t.Fatalf("features %dx%d, nodes %d dim %d", data.X.R, data.X.C, len(g.Nodes), FeatureDim)
	}
	if len(data.Edges) != len(g.Edges) {
		t.Fatal("edges lost in featurization")
	}
	// Masked features zero their block.
	masked := Featurize(g, FeatureMask{NoPOS: true})
	for v := 0; v < masked.X.R; v++ {
		for j := 0; j < featPOS; j++ {
			if masked.X.At(v, j) != 0 {
				t.Fatal("NoPOS mask leaked")
			}
		}
	}
}

func TestGCTSPLearnsConceptExtraction(t *testing.T) {
	w := tinyWorld()
	train := w.ConceptExamples(48, 2)
	test := w.ConceptExamples(12, 99)
	m := NewPhraseModel(w.Lexicon, Options{Epochs: 5, Layers: 3, Seed: 4, Fallback: true})
	m.Train(train)
	hits := 0
	for i := range test {
		if m.ExtractFromExample(&test[i]) == test[i].Gold() {
			hits++
		}
	}
	if hits < 7 {
		t.Fatalf("GCTSP-Net learned poorly: %d/12 exact", hits)
	}
}

func TestGCTSPKeyElements(t *testing.T) {
	w := tinyWorld()
	train := w.EventExamples(48, 3)
	test := w.EventExamples(8, 98)
	m := NewKeyElementModel(w.Lexicon, Options{Epochs: 5, Layers: 3, Seed: 5})
	m.Train(train)
	correct, total := 0, 0
	for i := range test {
		ex := &test[i]
		classes := m.KeyElements(ex.Queries, ex.Titles)
		for tok, cls := range classes {
			if cls == ex.KeyLabelOf(tok) {
				correct++
			}
			total++
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.8 {
		t.Fatalf("key element accuracy %d/%d", correct, total)
	}
}

func TestMinerEndToEnd(t *testing.T) {
	w := tinyWorld()
	log := w.GenerateLog(synth.LogConfig{Seed: 7, QueriesPerAspect: 3, DocsPerAspect: 3, MaxClicks: 20, NumSessions: 20})
	g := clickgraph.New()
	for _, r := range log.Records {
		g.Add(r.Query, r.DocID, log.Docs[r.DocID].Title, r.Clicks, r.Day)
	}
	pm := NewPhraseModel(w.Lexicon, Options{Epochs: 4, Layers: 3, Fallback: true})
	pm.Train(append(w.ConceptExamples(30, 8), w.EventExamples(30, 9)...))
	km := NewKeyElementModel(w.Lexicon, Options{Epochs: 4, Layers: 3})
	km.Train(w.EventExamples(30, 10))
	miner := NewMiner(pm, km, w.Lexicon)
	mined := miner.Mine(g)
	if len(mined) < len(w.Concepts)/2 {
		t.Fatalf("mined only %d attentions", len(mined))
	}
	events, concepts := 0, 0
	for _, m := range mined {
		if m.Phrase == "" {
			t.Fatal("empty mined phrase")
		}
		if m.IsEvent {
			events++
			if m.Trigger == "" && len(m.Entities) == 0 {
				t.Logf("event without recognized attributes: %q", m.Phrase)
			}
		} else {
			concepts++
		}
	}
	if events == 0 || concepts == 0 {
		t.Fatalf("mined %d events %d concepts; want both kinds", events, concepts)
	}
}
