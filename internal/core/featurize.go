// Package core implements the paper's primary contribution: GCTSP-Net
// (Graph Convolution – Traveling Salesman Problem Network) and the
// Algorithm 1 attention-mining pipeline built on it. A Query-Title
// Interaction Graph is featurized per node (NER tag, POS tag, stop-word
// flag, character count, insertion order — §3.1), encoded with a multi-layer
// R-GCN (basis decomposition), classified per node, and the positive nodes
// are ordered into a phrase by ATSP decoding. The same model, trained with
// four classes and no decoding, recognizes event key elements (entities,
// triggers, locations).
package core

import (
	"math"

	"giant/internal/nlp"
	"giant/internal/nn"
	"giant/internal/qtig"
	"giant/internal/rgcn"
)

// Feature layout (one-hot and scalar blocks, concatenated):
//
//	POS one-hot | NER one-hot | stop | charlen scalar + buckets |
//	seq-id scalar + sinusoids | SOS | EOS | input-frequency
const (
	featPOS     = nlp.NumPOS
	featNER     = nlp.NumNER
	featStop    = 1
	featCharLen = 1 + 4 // scalar + 4 buckets
	featSeqID   = 1 + 4 // scalar + sin/cos at two scales
	featSpecial = 2     // SOS, EOS
	featFreq    = 1     // fraction of inputs containing the token

	// FeatureDim is the R-GCN input width.
	FeatureDim = featPOS + featNER + featStop + featCharLen + featSeqID + featSpecial + featFreq
)

// FeatureMask disables feature blocks for ablation studies.
type FeatureMask struct {
	NoPOS   bool
	NoNER   bool
	NoSeqID bool
}

// Featurize converts a QTIG into R-GCN input features.
func Featurize(g *qtig.Graph, mask FeatureMask) *rgcn.GraphData {
	n := len(g.Nodes)
	data := &rgcn.GraphData{N: n}
	feats := make([]float64, 0, n*FeatureDim)

	// Token -> number of inputs containing it.
	freq := make(map[string]int)
	for _, in := range g.Inputs {
		seen := map[string]bool{}
		for _, t := range in {
			if !seen[t.Text] {
				seen[t.Text] = true
				freq[t.Text]++
			}
		}
	}
	numInputs := len(g.Inputs)
	if numInputs == 0 {
		numInputs = 1
	}

	for i, node := range g.Nodes {
		row := make([]float64, FeatureDim)
		off := 0
		if !mask.NoPOS {
			row[off+int(node.Token.POS)] = 1
		}
		off += featPOS
		if !mask.NoNER {
			row[off+int(node.Token.NER)] = 1
		}
		off += featNER
		if node.Token.Stop {
			row[off] = 1
		}
		off += featStop
		cl := len(node.Token.Text)
		row[off] = math.Min(float64(cl)/10, 1)
		switch {
		case cl <= 2:
			row[off+1] = 1
		case cl <= 5:
			row[off+2] = 1
		case cl <= 8:
			row[off+3] = 1
		default:
			row[off+4] = 1
		}
		off += featCharLen
		if !mask.NoSeqID {
			id := float64(node.SeqID)
			row[off] = id / float64(n)
			row[off+1] = math.Sin(id / 4)
			row[off+2] = math.Cos(id / 4)
			row[off+3] = math.Sin(id / 16)
			row[off+4] = math.Cos(id / 16)
		}
		off += featSeqID
		if node.IsSOS {
			row[off] = 1
		}
		if node.IsEOS {
			row[off+1] = 1
		}
		off += featSpecial
		row[off] = float64(freq[node.Token.Text]) / float64(numInputs)

		feats = append(feats, row...)
		_ = i
	}
	data.X = nn.NewMatFrom(n, FeatureDim, feats)
	data.Edges = make([]rgcn.Edge, 0, len(g.Edges))
	for _, e := range g.Edges {
		data.Edges = append(data.Edges, rgcn.Edge{Src: e.Src, Dst: e.Dst, Rel: e.Rel})
	}
	return data
}
