// Package nn is a compact neural-network substrate written against the
// standard library only: dense matrices, Adam, Dense/Embedding layers, LSTM
// and BiLSTM with full BPTT, a linear-chain CRF, and an attention seq2seq —
// everything the paper's learned components (R-GCN, LSTM-CRF baselines,
// TextSummary) need. All math is float64 and all backprop is hand-written.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	D    []float64
}

// NewMat returns a zeroed r×c matrix.
func NewMat(r, c int) *Mat {
	return &Mat{R: r, C: c, D: make([]float64, r*c)}
}

// NewMatFrom wraps data (not copied) as an r×c matrix.
func NewMatFrom(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("nn: NewMatFrom %dx%d with %d values", r, c, len(data)))
	}
	return &Mat{R: r, C: c, D: data}
}

// At returns m[i,j].
func (m *Mat) At(i, j int) float64 { return m.D[i*m.C+j] }

// Set assigns m[i,j] = v.
func (m *Mat) Set(i, j int, v float64) { m.D[i*m.C+j] = v }

// Add increments m[i,j] by v.
func (m *Mat) Add(i, j int, v float64) { m.D[i*m.C+j] += v }

// Row returns row i as a shared slice.
func (m *Mat) Row(i int) []float64 { return m.D[i*m.C : (i+1)*m.C] }

// Clone deep-copies the matrix.
func (m *Mat) Clone() *Mat {
	n := NewMat(m.R, m.C)
	copy(n.D, m.D)
	return n
}

// Zero sets all entries to 0.
func (m *Mat) Zero() {
	for i := range m.D {
		m.D[i] = 0
	}
}

// Scale multiplies all entries by s.
func (m *Mat) Scale(s float64) {
	for i := range m.D {
		m.D[i] *= s
	}
}

// AddMat accumulates o into m (same shape).
func (m *Mat) AddMat(o *Mat) {
	if m.R != o.R || m.C != o.C {
		panic("nn: AddMat shape mismatch")
	}
	for i := range m.D {
		m.D[i] += o.D[i]
	}
}

// MatMul returns A·B (A: r×k, B: k×c).
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("nn: MatMul %dx%d · %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTA returns Aᵀ·B (A: k×r, B: k×c → r×c). Used for weight gradients.
func MatMulTA(a, b *Mat) *Mat {
	if a.R != b.R {
		panic("nn: MatMulTA shape mismatch")
	}
	out := NewMat(a.C, b.C)
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTB returns A·Bᵀ (A: r×k, B: c×k → r×c). Used for input gradients.
func MatMulTB(a, b *Mat) *Mat {
	if a.C != b.C {
		panic("nn: MatMulTB shape mismatch")
	}
	out := NewMat(a.R, b.R)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.R; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// XavierInit fills m with Glorot-uniform values from rng.
func XavierInit(m *Mat, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.R+m.C))
	for i := range m.D {
		m.D[i] = (rng.Float64()*2 - 1) * limit
	}
}

// ReLU applies max(0, x) elementwise, returning a new matrix.
func ReLU(m *Mat) *Mat {
	out := NewMat(m.R, m.C)
	for i, v := range m.D {
		if v > 0 {
			out.D[i] = v
		}
	}
	return out
}

// ReLUBackward masks the upstream gradient by the ReLU activation pattern of
// pre (the pre-activation values).
func ReLUBackward(dOut, pre *Mat) *Mat {
	g := NewMat(dOut.R, dOut.C)
	for i, v := range pre.D {
		if v > 0 {
			g.D[i] = dOut.D[i]
		}
	}
	return g
}

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// SoftmaxRow replaces each row of m with its softmax, in place.
func SoftmaxRow(m *Mat) {
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		s := 0.0
		for j, v := range row {
			row[j] = math.Exp(v - mx)
			s += row[j]
		}
		if s == 0 {
			s = 1
		}
		for j := range row {
			row[j] /= s
		}
	}
}

// LogSumExp returns log Σ exp(xs).
func LogSumExp(xs []float64) float64 {
	mx := math.Inf(-1)
	for _, v := range xs {
		if v > mx {
			mx = v
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	s := 0.0
	for _, v := range xs {
		s += math.Exp(v - mx)
	}
	return mx + math.Log(s)
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// CosineSim returns the cosine similarity of two vectors (0 when either is
// zero).
func CosineSim(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
