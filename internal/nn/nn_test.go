package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulShapes(t *testing.T) {
	a := NewMatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if math.Abs(c.D[i]-v) > 1e-12 {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.D[i], v)
		}
	}
}

func TestMatMulTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMat(4, 3)
	b := NewMat(4, 5)
	XavierInit(a, rng)
	XavierInit(b, rng)
	// Aᵀ·B via MatMulTA must equal explicit transpose multiply.
	at := NewMat(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	got := MatMulTA(a, b)
	want := MatMul(at, b)
	for i := range want.D {
		if math.Abs(got.D[i]-want.D[i]) > 1e-12 {
			t.Fatal("MatMulTA mismatch")
		}
	}
	// A·Bᵀ via MatMulTB.
	c := NewMat(5, 3)
	XavierInit(c, rng)
	ct := NewMat(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	got2 := MatMulTB(a, c)
	want2 := MatMul(a, ct)
	for i := range want2.D {
		if math.Abs(got2.D[i]-want2.D[i]) > 1e-12 {
			t.Fatal("MatMulTB mismatch")
		}
	}
}

func TestSoftmaxRowSumsToOne(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 500 {
				return true // skip extreme inputs
			}
		}
		m := NewMatFrom(1, 3, []float64{a, b, c})
		SoftmaxRow(m)
		s := m.D[0] + m.D[1] + m.D[2]
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogSumExpStable(t *testing.T) {
	v := LogSumExp([]float64{1000, 1000})
	if math.IsInf(v, 0) || math.Abs(v-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp overflow: %v", v)
	}
}

// numericGrad estimates dLoss/dw by central differences.
func numericGrad(w *float64, loss func() float64) float64 {
	const eps = 1e-5
	old := *w
	*w = old + eps
	lp := loss()
	*w = old - eps
	lm := loss()
	*w = old
	return (lp - lm) / (2 * eps)
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense("d", 3, 2, rng)
	x := NewMatFrom(2, 3, []float64{0.5, -1, 2, 0.1, 0.3, -0.7})
	labels := []int{1, 0}
	loss := func() float64 {
		out := d.Forward(x)
		l, _ := SoftmaxCE(out, labels)
		return l
	}
	out := d.Forward(x)
	_, dOut := SoftmaxCE(out, labels)
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	d.Backward(dOut)
	for i := 0; i < len(d.W.W.D); i++ {
		want := numericGrad(&d.W.W.D[i], loss)
		if math.Abs(want-d.W.G.D[i]) > 1e-6 {
			t.Fatalf("dW[%d]: analytic %v numeric %v", i, d.W.G.D[i], want)
		}
	}
	for i := 0; i < len(d.B.W.D); i++ {
		want := numericGrad(&d.B.W.D[i], loss)
		if math.Abs(want-d.B.G.D[i]) > 1e-6 {
			t.Fatalf("db[%d]: analytic %v numeric %v", i, d.B.G.D[i], want)
		}
	}
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM("l", 3, 4, rng)
	out := NewDense("o", 4, 2, rng)
	xs := NewMat(3, 3)
	XavierInit(xs, rng)
	labels := []int{0, 1, 0}
	loss := func() float64 {
		h := l.Forward(xs, nil, nil)
		logits := out.Forward(h)
		v, _ := SoftmaxCE(logits, labels)
		return v
	}
	h := l.Forward(xs, nil, nil)
	logits := out.Forward(h)
	_, dLogits := SoftmaxCE(logits, labels)
	for _, p := range append(l.Params(), out.Params()...) {
		p.ZeroGrad()
	}
	dh := out.Backward(dLogits)
	l.Backward(dh)
	for _, p := range l.Params() {
		for i := 0; i < len(p.W.D); i += 7 { // sample every 7th weight
			want := numericGrad(&p.W.D[i], loss)
			if math.Abs(want-p.G.D[i]) > 1e-5 {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, i, p.G.D[i], want)
			}
		}
	}
}

func TestBiLSTMShapesAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bl := NewBiLSTM("bl", 3, 5, rng)
	xs := NewMat(4, 3)
	XavierInit(xs, rng)
	h := bl.Forward(xs)
	if h.R != 4 || h.C != 10 {
		t.Fatalf("BiLSTM output %dx%d", h.R, h.C)
	}
	dx := bl.Backward(h.Clone())
	if dx.R != 4 || dx.C != 3 {
		t.Fatalf("BiLSTM dx %dx%d", dx.R, dx.C)
	}
}

func TestCRFGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	crf := NewCRF("c", 3, rng)
	em := NewMat(4, 3)
	XavierInit(em, rng)
	gold := []int{0, 1, 2, 1}
	loss := func() float64 {
		l, _ := crf.NegLogLikelihood(em, gold)
		return l
	}
	for _, p := range crf.Params() {
		p.ZeroGrad()
	}
	_, dEm := crf.NegLogLikelihood(em, gold)
	// Snapshot analytic gradients now: the numeric probes below call
	// NegLogLikelihood again, which accumulates further into p.G.
	analytic := map[string][]float64{}
	for _, p := range crf.Params() {
		analytic[p.Name] = append([]float64(nil), p.G.D...)
	}
	for _, p := range crf.Params() {
		for i := 0; i < len(p.W.D); i++ {
			want := numericGrad(&p.W.D[i], loss)
			if math.Abs(want-analytic[p.Name][i]) > 1e-5 {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, i, analytic[p.Name][i], want)
			}
		}
	}
	// Emission gradient check.
	for i := 0; i < len(em.D); i += 3 {
		want := numericGrad(&em.D[i], loss)
		if math.Abs(want-dEm.D[i]) > 1e-5 {
			t.Fatalf("dEm[%d]: analytic %v numeric %v", i, dEm.D[i], want)
		}
	}
}

func TestCRFDecodeConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	crf := NewCRF("c", 4, rng)
	// Strong emissions dominate: decode should follow the argmax when
	// transitions are near zero.
	em := NewMat(5, 4)
	gold := []int{3, 1, 0, 2, 2}
	for t0, g := range gold {
		em.Set(t0, g, 10)
	}
	path := crf.Decode(em)
	for i := range gold {
		if path[i] != gold[i] {
			t.Fatalf("Decode = %v, want %v", path, gold)
		}
	}
}

func TestCRFTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	crf := NewCRF("c", 3, rng)
	em := NewMat(6, 3)
	XavierInit(em, rng)
	gold := []int{0, 1, 1, 2, 0, 1}
	adam := NewAdam(0.1, crf.Params())
	first, _ := crf.NegLogLikelihood(em, gold)
	adam.Step()
	var last float64
	for i := 0; i < 30; i++ {
		last, _ = crf.NegLogLikelihood(em, gold)
		adam.Step()
	}
	if last >= first {
		t.Fatalf("CRF loss did not decrease: %v -> %v", first, last)
	}
}

func TestAdamConverges(t *testing.T) {
	// Minimize (w-3)^2.
	p := NewParam("w", 1, 1, nil)
	adam := NewAdam(0.1, []*Param{p})
	for i := 0; i < 300; i++ {
		p.G.D[0] = 2 * (p.W.D[0] - 3)
		adam.Step()
	}
	if math.Abs(p.W.D[0]-3) > 0.01 {
		t.Fatalf("Adam failed to converge: %v", p.W.D[0])
	}
}

func TestEmbeddingForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := NewEmbedding("e", 10, 4, rng)
	out := e.Forward([]int{2, 2, 5})
	if out.R != 3 || out.C != 4 {
		t.Fatalf("embedding out %dx%d", out.R, out.C)
	}
	d := NewMat(3, 4)
	for i := range d.D {
		d.D[i] = 1
	}
	e.Backward(d)
	// Row 2 looked up twice: grad 2 per dim; row 5 once.
	if e.Table.G.At(2, 0) != 2 || e.Table.G.At(5, 0) != 1 {
		t.Fatalf("embedding grads wrong: %v %v", e.Table.G.At(2, 0), e.Table.G.At(5, 0))
	}
}

func TestSeq2SeqOverfitsTinyPair(t *testing.T) {
	v := NewVocab()
	src := []int{v.Learn("a"), v.Learn("b"), v.Learn("c")}
	tgt := []int{v.ID("b"), v.ID("c")}
	rng := rand.New(rand.NewSource(9))
	m := NewSeq2Seq(v, 8, 8, rng)
	adam := NewAdam(0.05, m.Params())
	var first, last float64
	for i := 0; i < 150; i++ {
		l := m.TrainStep(src, tgt)
		adam.Step()
		if i == 0 {
			first = l
		}
		last = l
	}
	if last >= first {
		t.Fatalf("seq2seq loss did not decrease: %v -> %v", first, last)
	}
	out := m.Generate(src, 4)
	if len(out) != 2 || out[0] != tgt[0] || out[1] != tgt[1] {
		t.Fatalf("seq2seq failed to memorize: %v want %v", out, tgt)
	}
}

func TestVocabReserved(t *testing.T) {
	v := NewVocab()
	if v.ID("missing") != UnkID {
		t.Fatal("unknown word should map to UnkID")
	}
	if v.Word(SosID) != "<sos>" || v.Word(EosID) != "<eos>" {
		t.Fatal("reserved words wrong")
	}
	id := v.Learn("hello")
	if v.ID("hello") != id || v.Word(id) != "hello" {
		t.Fatal("Learn/ID/Word roundtrip failed")
	}
}

func TestBCEWithLogits(t *testing.T) {
	loss, d := BCEWithLogits([]float64{0}, []float64{1})
	if math.Abs(loss-math.Log(2)) > 1e-9 {
		t.Fatalf("BCE loss = %v", loss)
	}
	if d[0] >= 0 {
		t.Fatalf("gradient should push logit up: %v", d[0])
	}
}

func TestWeightedSoftmaxCEMasking(t *testing.T) {
	logits := NewMatFrom(2, 2, []float64{1, 0, 0, 1})
	loss, d := WeightedSoftmaxCE(logits, []int{-1, 1}, []float64{1, 1})
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if d.At(0, 0) != 0 || d.At(0, 1) != 0 {
		t.Fatal("masked row should have zero gradient")
	}
}
