package nn

import (
	"math"
	"math/rand"
)

// LSTM is a single-layer unidirectional LSTM processing one sequence at a
// time (the paper's sequences — queries and titles — are short, so batch
// size 1 keeps the implementation simple and exact).
type LSTM struct {
	In, Hidden int
	Wx, Wh, B  *Param // gate order: i, f, g, o (each Hidden wide)

	cache []lstmStep
}

type lstmStep struct {
	x          []float64
	i, f, g, o []float64
	c, h       []float64
	cPrev      []float64
	hPrev      []float64
}

// NewLSTM builds an in→hidden LSTM with forget-gate bias 1.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wx: NewParam(name+".Wx", in, 4*hidden, rng),
		Wh: NewParam(name+".Wh", hidden, 4*hidden, rng),
		B:  NewParam(name+".b", 1, 4*hidden, nil),
	}
	for j := hidden; j < 2*hidden; j++ {
		l.B.W.D[j] = 1 // forget bias
	}
	return l
}

// Params lists trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// Forward runs the sequence xs (T×In) and returns hidden states (T×Hidden).
// h0/c0 may be nil for zeros.
func (l *LSTM) Forward(xs *Mat, h0, c0 []float64) *Mat {
	T := xs.R
	H := l.Hidden
	out := NewMat(T, H)
	l.cache = l.cache[:0]
	hPrev := make([]float64, H)
	cPrev := make([]float64, H)
	if h0 != nil {
		copy(hPrev, h0)
	}
	if c0 != nil {
		copy(cPrev, c0)
	}
	for t := 0; t < T; t++ {
		x := xs.Row(t)
		st := lstmStep{
			x: x,
			i: make([]float64, H), f: make([]float64, H),
			g: make([]float64, H), o: make([]float64, H),
			c: make([]float64, H), h: make([]float64, H),
			cPrev: append([]float64(nil), cPrev...),
			hPrev: append([]float64(nil), hPrev...),
		}
		// gates = x·Wx + h·Wh + b
		gates := make([]float64, 4*H)
		copy(gates, l.B.W.D)
		for k, xv := range x {
			if xv == 0 {
				continue
			}
			wrow := l.Wx.W.Row(k)
			for j := range gates {
				gates[j] += xv * wrow[j]
			}
		}
		for k, hv := range hPrev {
			if hv == 0 {
				continue
			}
			wrow := l.Wh.W.Row(k)
			for j := range gates {
				gates[j] += hv * wrow[j]
			}
		}
		for j := 0; j < H; j++ {
			st.i[j] = Sigmoid(gates[j])
			st.f[j] = Sigmoid(gates[H+j])
			st.g[j] = math.Tanh(gates[2*H+j])
			st.o[j] = Sigmoid(gates[3*H+j])
			st.c[j] = st.f[j]*cPrev[j] + st.i[j]*st.g[j]
			st.h[j] = st.o[j] * math.Tanh(st.c[j])
		}
		copy(out.Row(t), st.h)
		copy(hPrev, st.h)
		copy(cPrev, st.c)
		l.cache = append(l.cache, st)
	}
	return out
}

// Backward back-propagates dHs (T×Hidden) through time, accumulating
// parameter gradients and returning dXs (T×In).
func (l *LSTM) Backward(dHs *Mat) *Mat {
	T := len(l.cache)
	H := l.Hidden
	dXs := NewMat(T, l.In)
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)
	dGates := make([]float64, 4*H)
	for t := T - 1; t >= 0; t-- {
		st := &l.cache[t]
		dh := make([]float64, H)
		copy(dh, dHs.Row(t))
		for j := range dh {
			dh[j] += dhNext[j]
		}
		for j := 0; j < H; j++ {
			tc := math.Tanh(st.c[j])
			do := dh[j] * tc
			dc := dh[j]*st.o[j]*(1-tc*tc) + dcNext[j]
			di := dc * st.g[j]
			df := dc * st.cPrev[j]
			dg := dc * st.i[j]
			dcNext[j] = dc * st.f[j]
			dGates[j] = di * st.i[j] * (1 - st.i[j])
			dGates[H+j] = df * st.f[j] * (1 - st.f[j])
			dGates[2*H+j] = dg * (1 - st.g[j]*st.g[j])
			dGates[3*H+j] = do * st.o[j] * (1 - st.o[j])
		}
		// Parameter gradients.
		for k, xv := range st.x {
			if xv == 0 {
				continue
			}
			grow := l.Wx.G.Row(k)
			for j, dv := range dGates {
				grow[j] += xv * dv
			}
		}
		for k, hv := range st.hPrev {
			if hv == 0 {
				continue
			}
			grow := l.Wh.G.Row(k)
			for j, dv := range dGates {
				grow[j] += hv * dv
			}
		}
		for j, dv := range dGates {
			l.B.G.D[j] += dv
		}
		// Input and previous-hidden gradients.
		dx := dXs.Row(t)
		for k := 0; k < l.In; k++ {
			wrow := l.Wx.W.Row(k)
			s := 0.0
			for j, dv := range dGates {
				s += wrow[j] * dv
			}
			dx[k] = s
		}
		for k := 0; k < H; k++ {
			wrow := l.Wh.W.Row(k)
			s := 0.0
			for j, dv := range dGates {
				s += wrow[j] * dv
			}
			dhNext[k] = s
		}
	}
	return dXs
}

// LastState returns (h, c) after the most recent Forward (zeros when the
// sequence was empty).
func (l *LSTM) LastState() (h, c []float64) {
	if len(l.cache) == 0 {
		return make([]float64, l.Hidden), make([]float64, l.Hidden)
	}
	st := l.cache[len(l.cache)-1]
	return st.h, st.c
}

// BiLSTM runs a forward and a backward LSTM and concatenates their outputs
// (T × 2·Hidden).
type BiLSTM struct {
	Fwd, Bwd *LSTM
}

// NewBiLSTM builds the pair.
func NewBiLSTM(name string, in, hidden int, rng *rand.Rand) *BiLSTM {
	return &BiLSTM{
		Fwd: NewLSTM(name+".fwd", in, hidden, rng),
		Bwd: NewLSTM(name+".bwd", in, hidden, rng),
	}
}

// Params lists trainable parameters.
func (b *BiLSTM) Params() []*Param {
	return append(b.Fwd.Params(), b.Bwd.Params()...)
}

// Forward returns the concatenated hidden states.
func (b *BiLSTM) Forward(xs *Mat) *Mat {
	T := xs.R
	hf := b.Fwd.Forward(xs, nil, nil)
	rev := reverseRows(xs)
	hbRev := b.Bwd.Forward(rev, nil, nil)
	H := b.Fwd.Hidden
	out := NewMat(T, 2*H)
	for t := 0; t < T; t++ {
		copy(out.Row(t)[:H], hf.Row(t))
		copy(out.Row(t)[H:], hbRev.Row(T-1-t))
	}
	return out
}

// Backward splits the upstream gradient between the two directions and
// returns the summed input gradient.
func (b *BiLSTM) Backward(dOut *Mat) *Mat {
	T := dOut.R
	H := b.Fwd.Hidden
	df := NewMat(T, H)
	dbRev := NewMat(T, H)
	for t := 0; t < T; t++ {
		copy(df.Row(t), dOut.Row(t)[:H])
		copy(dbRev.Row(T-1-t), dOut.Row(t)[H:])
	}
	dxF := b.Fwd.Backward(df)
	dxBRev := b.Bwd.Backward(dbRev)
	dx := NewMat(T, dxF.C)
	for t := 0; t < T; t++ {
		rf := dxF.Row(t)
		rb := dxBRev.Row(T - 1 - t)
		row := dx.Row(t)
		for j := range row {
			row[j] = rf[j] + rb[j]
		}
	}
	return dx
}

func reverseRows(m *Mat) *Mat {
	out := NewMat(m.R, m.C)
	for i := 0; i < m.R; i++ {
		copy(out.Row(i), m.Row(m.R-1-i))
	}
	return out
}
