package nn

import (
	"math"
	"math/rand"
)

// Vocab maps tokens to contiguous ids with the reserved <unk>/<sos>/<eos>
// entries the seq2seq model needs.
type Vocab struct {
	idx   map[string]int
	words []string
}

// Reserved vocabulary ids.
const (
	UnkID = 0
	SosID = 1
	EosID = 2
)

// NewVocab returns a vocabulary containing only the reserved tokens.
func NewVocab() *Vocab {
	v := &Vocab{idx: make(map[string]int)}
	for _, w := range []string{"<unk>", "<sos>", "<eos>"} {
		v.idx[w] = len(v.words)
		v.words = append(v.words, w)
	}
	return v
}

// Learn adds w if absent and returns its id.
func (v *Vocab) Learn(w string) int {
	if id, ok := v.idx[w]; ok {
		return id
	}
	id := len(v.words)
	v.idx[w] = id
	v.words = append(v.words, w)
	return id
}

// ID returns w's id (UnkID when unknown).
func (v *Vocab) ID(w string) int {
	if id, ok := v.idx[w]; ok {
		return id
	}
	return UnkID
}

// Word returns the token for an id.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return "<unk>"
	}
	return v.words[id]
}

// Size returns the vocabulary size.
func (v *Vocab) Size() int { return len(v.words) }

// Seq2Seq is an attention encoder-decoder: BiLSTM encoder, LSTM decoder with
// dot-product attention — the TextSummary baseline of Table 6.
type Seq2Seq struct {
	Vocab   *Vocab
	Emb     *Embedding
	Enc     *BiLSTM
	Dec     *LSTM
	Out     *Dense // [h_dec ; ctx] -> vocab logits
	hidden  int    // encoder hidden per direction; decoder hidden = 2*hidden
	adamSet []*Param
}

// NewSeq2Seq builds the model. Decoder hidden width is 2·hidden so encoder
// states can initialize it and attention is a plain dot product.
func NewSeq2Seq(vocab *Vocab, embDim, hidden int, rng *rand.Rand) *Seq2Seq {
	s := &Seq2Seq{
		Vocab:  vocab,
		Emb:    NewEmbedding("s2s.emb", vocab.Size(), embDim, rng),
		Enc:    NewBiLSTM("s2s.enc", embDim, hidden, rng),
		Dec:    NewLSTM("s2s.dec", embDim, 2*hidden, rng),
		Out:    NewDense("s2s.out", 4*hidden, vocab.Size(), rng),
		hidden: hidden,
	}
	s.adamSet = append(s.adamSet, s.Emb.Params()...)
	s.adamSet = append(s.adamSet, s.Enc.Params()...)
	s.adamSet = append(s.adamSet, s.Dec.Params()...)
	s.adamSet = append(s.adamSet, s.Out.Params()...)
	return s
}

// Params lists trainable parameters.
func (s *Seq2Seq) Params() []*Param { return s.adamSet }

// TrainStep runs one teacher-forced example (source token ids, target token
// ids WITHOUT sos/eos) and accumulates gradients, returning the mean token
// loss.
func (s *Seq2Seq) TrainStep(src, tgt []int) float64 {
	if len(src) == 0 || len(tgt) == 0 {
		return 0
	}
	// ---- Encoder ----
	srcEmb := s.Emb.Forward(src)
	hEnc := s.Enc.Forward(srcEmb) // Tsrc × 2h

	// ---- Decoder (teacher forcing) ----
	decIn := make([]int, 0, len(tgt)+1)
	decIn = append(decIn, SosID)
	decIn = append(decIn, tgt...)
	gold := make([]int, 0, len(tgt)+1)
	gold = append(gold, tgt...)
	gold = append(gold, EosID)

	decEmb := s.embForwardSecond(decIn)
	h0, c0 := s.initDecState()
	hDec := s.Dec.Forward(decEmb, h0, c0) // Tdec × 2h

	Td, Ts := hDec.R, hEnc.R
	// Attention per decoder step.
	alphas := NewMat(Td, Ts)
	ctxs := NewMat(Td, 2*s.hidden)
	for t := 0; t < Td; t++ {
		scores := make([]float64, Ts)
		for i := 0; i < Ts; i++ {
			scores[i] = Dot(hDec.Row(t), hEnc.Row(i))
		}
		soft(scores)
		copy(alphas.Row(t), scores)
		crow := ctxs.Row(t)
		for i := 0; i < Ts; i++ {
			a := scores[i]
			erow := hEnc.Row(i)
			for j := range crow {
				crow[j] += a * erow[j]
			}
		}
	}
	// Output projection.
	feat := NewMat(Td, 4*s.hidden)
	for t := 0; t < Td; t++ {
		copy(feat.Row(t)[:2*s.hidden], hDec.Row(t))
		copy(feat.Row(t)[2*s.hidden:], ctxs.Row(t))
	}
	logits := s.Out.Forward(feat)
	loss, dLogits := SoftmaxCE(logits, gold)

	// ---- Backward ----
	dFeat := s.Out.Backward(dLogits)
	dHDec := NewMat(Td, 2*s.hidden)
	dHEnc := NewMat(Ts, 2*s.hidden)
	for t := 0; t < Td; t++ {
		dh := dHDec.Row(t)
		dctx := dFeat.Row(t)[2*s.hidden:]
		copy(dh, dFeat.Row(t)[:2*s.hidden])
		// Through context: ctx = Σ α_i hEnc_i.
		dAlpha := make([]float64, Ts)
		for i := 0; i < Ts; i++ {
			erow := hEnc.Row(i)
			dAlpha[i] = Dot(dctx, erow)
			a := alphas.At(t, i)
			drow := dHEnc.Row(i)
			for j := range drow {
				drow[j] += a * dctx[j]
			}
		}
		// Softmax jacobian.
		arow := alphas.Row(t)
		dot := Dot(dAlpha, arow)
		for i := 0; i < Ts; i++ {
			ds := arow[i] * (dAlpha[i] - dot)
			// score_i = hDec_t · hEnc_i
			erow := hEnc.Row(i)
			for j := range dh {
				dh[j] += ds * erow[j]
			}
			drow := dHEnc.Row(i)
			hrow := hDec.Row(t)
			for j := range drow {
				drow[j] += ds * hrow[j]
			}
		}
	}
	dDecEmb := s.Dec.Backward(dHDec)
	s.embBackwardSecond(decIn, dDecEmb)
	dSrcEmb := s.Enc.Backward(dHEnc)
	s.embBackwardSecond(src, dSrcEmb)
	return loss
}

// The encoder and decoder share the embedding table but need independent id
// caches within one train step; these helpers do a second lookup without
// clobbering the encoder's cache.
func (s *Seq2Seq) embForwardSecond(ids []int) *Mat {
	out := NewMat(len(ids), s.Emb.Dim())
	for i, id := range ids {
		copy(out.Row(i), s.Emb.Table.W.Row(id))
	}
	return out
}

func (s *Seq2Seq) embBackwardSecond(ids []int, dOut *Mat) {
	for i, id := range ids {
		grow := s.Emb.Table.G.Row(id)
		drow := dOut.Row(i)
		for j := range grow {
			grow[j] += drow[j]
		}
	}
}

func (s *Seq2Seq) initDecState() (h, c []float64) {
	hf, cf := s.Enc.Fwd.LastState()
	hb, cb := s.Enc.Bwd.LastState()
	h = append(append([]float64(nil), hf...), hb...)
	c = append(append([]float64(nil), cf...), cb...)
	return h, c
}

// Generate decodes greedily from src up to maxLen tokens.
func (s *Seq2Seq) Generate(src []int, maxLen int) []int {
	if len(src) == 0 {
		return nil
	}
	srcEmb := s.embForwardSecond(src)
	hEnc := s.Enc.Forward(srcEmb)
	h, c := s.initDecState()
	prev := SosID
	var out []int
	for t := 0; t < maxLen; t++ {
		x := NewMat(1, s.Emb.Dim())
		copy(x.Row(0), s.Emb.Table.W.Row(prev))
		hD := s.Dec.Forward(x, h, c)
		h, c = s.Dec.LastState()
		hrow := hD.Row(0)
		Ts := hEnc.R
		scores := make([]float64, Ts)
		for i := 0; i < Ts; i++ {
			scores[i] = Dot(hrow, hEnc.Row(i))
		}
		soft(scores)
		ctx := make([]float64, 2*s.hidden)
		for i := 0; i < Ts; i++ {
			erow := hEnc.Row(i)
			for j := range ctx {
				ctx[j] += scores[i] * erow[j]
			}
		}
		feat := NewMat(1, 4*s.hidden)
		copy(feat.Row(0)[:2*s.hidden], hrow)
		copy(feat.Row(0)[2*s.hidden:], ctx)
		logits := s.Out.Forward(feat)
		best, arg := math.Inf(-1), EosID
		for j := 0; j < logits.C; j++ {
			if v := logits.At(0, j); v > best {
				best, arg = v, j
			}
		}
		if arg == EosID {
			break
		}
		out = append(out, arg)
		prev = arg
	}
	return out
}

func soft(xs []float64) {
	mx := math.Inf(-1)
	for _, v := range xs {
		if v > mx {
			mx = v
		}
	}
	s := 0.0
	for i, v := range xs {
		xs[i] = math.Exp(v - mx)
		s += xs[i]
	}
	if s == 0 {
		s = 1
	}
	for i := range xs {
		xs[i] /= s
	}
}
