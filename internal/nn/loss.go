package nn

import "math"

// SoftmaxCE computes mean softmax cross-entropy over rows of logits against
// integer labels, returning the loss and dLogits. Rows whose label is -1 are
// masked out.
func SoftmaxCE(logits *Mat, labels []int) (float64, *Mat) {
	probs := logits.Clone()
	SoftmaxRow(probs)
	d := NewMat(logits.R, logits.C)
	loss, n := 0.0, 0
	for i := 0; i < logits.R; i++ {
		y := labels[i]
		if y < 0 {
			continue
		}
		n++
		p := probs.At(i, y)
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		row := d.Row(i)
		copy(row, probs.Row(i))
		row[y] -= 1
	}
	if n == 0 {
		return 0, d
	}
	inv := 1 / float64(n)
	d.Scale(inv)
	return loss * inv, d
}

// WeightedSoftmaxCE is SoftmaxCE with a per-class weight (for the heavily
// imbalanced node-classification task: most QTIG nodes are negative).
func WeightedSoftmaxCE(logits *Mat, labels []int, classWeight []float64) (float64, *Mat) {
	probs := logits.Clone()
	SoftmaxRow(probs)
	d := NewMat(logits.R, logits.C)
	loss, wsum := 0.0, 0.0
	for i := 0; i < logits.R; i++ {
		y := labels[i]
		if y < 0 {
			continue
		}
		w := 1.0
		if y < len(classWeight) {
			w = classWeight[y]
		}
		wsum += w
		p := probs.At(i, y)
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= w * math.Log(p)
		row := d.Row(i)
		for j := 0; j < logits.C; j++ {
			row[j] = w * probs.At(i, j)
		}
		row[y] -= w
	}
	if wsum == 0 {
		return 0, d
	}
	inv := 1 / wsum
	d.Scale(inv)
	return loss * inv, d
}

// BCEWithLogits computes mean binary cross-entropy of scalar logits against
// {0,1} targets, returning loss and dLogits.
func BCEWithLogits(logits, targets []float64) (float64, []float64) {
	loss := 0.0
	d := make([]float64, len(logits))
	for i, z := range logits {
		p := Sigmoid(z)
		t := targets[i]
		pc := math.Min(math.Max(p, 1e-12), 1-1e-12)
		loss -= t*math.Log(pc) + (1-t)*math.Log(1-pc)
		d[i] = (p - t) / float64(len(logits))
	}
	return loss / float64(len(logits)), d
}
