package nn

import "math/rand"

// Dense is a fully connected layer y = xW + b.
type Dense struct {
	W, B *Param
	x    *Mat // cached input for backprop
}

// NewDense builds an in→out layer.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	return &Dense{
		W: NewParam(name+".W", in, out, rng),
		B: NewParam(name+".b", 1, out, nil),
	}
}

// Params lists trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward computes xW + b, caching x for Backward.
func (d *Dense) Forward(x *Mat) *Mat {
	d.x = x
	return d.Infer(x)
}

// Infer computes xW + b without caching x, so a trained layer can serve
// concurrent inference calls.
func (d *Dense) Infer(x *Mat) *Mat {
	out := MatMul(x, d.W.W)
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.B.W.D[j]
		}
	}
	return out
}

// Backward accumulates parameter gradients and returns dL/dx.
func (d *Dense) Backward(dOut *Mat) *Mat {
	d.W.G.AddMat(MatMulTA(d.x, dOut))
	for i := 0; i < dOut.R; i++ {
		row := dOut.Row(i)
		for j := range row {
			d.B.G.D[j] += row[j]
		}
	}
	return MatMulTB(dOut, d.W.W)
}

// Embedding is a lookup table of dense vectors.
type Embedding struct {
	Table *Param
	ids   []int
}

// NewEmbedding builds a vocab×dim table.
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{Table: NewParam(name, vocab, dim, rng)}
}

// Params lists trainable parameters.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

// Dim returns the embedding width.
func (e *Embedding) Dim() int { return e.Table.W.C }

// Forward gathers rows for ids into an n×dim matrix.
func (e *Embedding) Forward(ids []int) *Mat {
	e.ids = append(e.ids[:0], ids...)
	out := NewMat(len(ids), e.Dim())
	for i, id := range ids {
		copy(out.Row(i), e.Table.W.Row(id))
	}
	return out
}

// Backward scatters upstream gradients back to the looked-up rows.
func (e *Embedding) Backward(dOut *Mat) {
	for i, id := range e.ids {
		grow := e.Table.G.Row(id)
		drow := dOut.Row(i)
		for j := range grow {
			grow[j] += drow[j]
		}
	}
}
