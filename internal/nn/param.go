package nn

import (
	"math"
	"math/rand"
)

// Param is a trainable matrix with its gradient and Adam state.
type Param struct {
	Name string
	W    *Mat
	G    *Mat
	m, v *Mat
}

// NewParam allocates a named r×c parameter, Xavier-initialized from rng
// (zeros when rng is nil, e.g. biases).
func NewParam(name string, r, c int, rng *rand.Rand) *Param {
	p := &Param{Name: name, W: NewMat(r, c), G: NewMat(r, c), m: NewMat(r, c), v: NewMat(r, c)}
	if rng != nil {
		XavierInit(p.W, rng)
	}
	return p
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Adam is the Adam optimizer over a fixed parameter list.
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	Clip   float64 // max gradient L2 norm per step (0 disables clipping)
	t      int
	params []*Param
}

// NewAdam returns an optimizer with the usual defaults and gradient clipping
// at norm 5.
func NewAdam(lr float64, params []*Param) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5, params: params}
}

// Params returns the managed parameter list.
func (a *Adam) Params() []*Param { return a.params }

// ZeroGrad clears all gradients.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// Step applies one Adam update (with optional global-norm clipping) and
// clears gradients.
func (a *Adam) Step() {
	a.t++
	if a.Clip > 0 {
		var norm float64
		for _, p := range a.params {
			for _, g := range p.G.D {
				norm += g * g
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.Clip {
			s := a.Clip / norm
			for _, p := range a.params {
				p.G.Scale(s)
			}
		}
	}
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range a.params {
		for i, g := range p.G.D {
			p.m.D[i] = a.Beta1*p.m.D[i] + (1-a.Beta1)*g
			p.v.D[i] = a.Beta2*p.v.D[i] + (1-a.Beta2)*g*g
			mhat := p.m.D[i] / b1c
			vhat := p.v.D[i] / b2c
			p.W.D[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
		p.ZeroGrad()
	}
}
