package nn

import (
	"math"
	"math/rand"
)

// CRF is a linear-chain conditional random field over K tags, used by the
// LSTM-CRF baselines (BIO phrase tagging, Table 5/6; key-element tagging,
// Table 7). Emissions come from an upstream network; the CRF owns the
// transition, start and end scores.
type CRF struct {
	K                 int
	Trans, Start, End *Param
}

// NewCRF builds a K-tag CRF with small random transition scores.
func NewCRF(name string, k int, rng *rand.Rand) *CRF {
	c := &CRF{
		K:     k,
		Trans: NewParam(name+".trans", k, k, nil),
		Start: NewParam(name+".start", 1, k, nil),
		End:   NewParam(name+".end", 1, k, nil),
	}
	if rng != nil {
		for i := range c.Trans.W.D {
			c.Trans.W.D[i] = rng.NormFloat64() * 0.01
		}
	}
	return c
}

// Params lists trainable parameters.
func (c *CRF) Params() []*Param { return []*Param{c.Trans, c.Start, c.End} }

// NegLogLikelihood returns the NLL of the gold tag path given emissions
// (T×K) and accumulates gradients into the CRF parameters; dEmissions is the
// gradient with respect to the emissions (T×K), computed with
// forward-backward marginals.
func (c *CRF) NegLogLikelihood(em *Mat, gold []int) (loss float64, dEmissions *Mat) {
	T, K := em.R, c.K
	if T == 0 {
		return 0, NewMat(0, K)
	}
	// Forward (alpha) and backward (beta) in log space.
	alpha := NewMat(T, K)
	for j := 0; j < K; j++ {
		alpha.Set(0, j, c.Start.W.D[j]+em.At(0, j))
	}
	tmp := make([]float64, K)
	for t := 1; t < T; t++ {
		for j := 0; j < K; j++ {
			for i := 0; i < K; i++ {
				tmp[i] = alpha.At(t-1, i) + c.Trans.W.At(i, j)
			}
			alpha.Set(t, j, LogSumExp(tmp)+em.At(t, j))
		}
	}
	final := make([]float64, K)
	for j := 0; j < K; j++ {
		final[j] = alpha.At(T-1, j) + c.End.W.D[j]
	}
	logZ := LogSumExp(final)

	beta := NewMat(T, K)
	for j := 0; j < K; j++ {
		beta.Set(T-1, j, c.End.W.D[j])
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < K; i++ {
			for j := 0; j < K; j++ {
				tmp[j] = c.Trans.W.At(i, j) + em.At(t+1, j) + beta.At(t+1, j)
			}
			beta.Set(t, i, LogSumExp(tmp))
		}
	}

	// Gold path score.
	score := c.Start.W.D[gold[0]] + em.At(0, gold[0])
	for t := 1; t < T; t++ {
		score += c.Trans.W.At(gold[t-1], gold[t]) + em.At(t, gold[t])
	}
	score += c.End.W.D[gold[T-1]]
	loss = logZ - score

	// Gradients: expected counts minus gold counts.
	dEmissions = NewMat(T, K)
	for t := 0; t < T; t++ {
		for j := 0; j < K; j++ {
			p := math.Exp(alpha.At(t, j) + beta.At(t, j) - logZ)
			dEmissions.Set(t, j, p)
		}
		dEmissions.Add(t, gold[t], -1)
	}
	for j := 0; j < K; j++ {
		c.Start.G.D[j] += math.Exp(c.Start.W.D[j]+em.At(0, j)+beta.At(0, j)-logZ) - b2f(j == gold[0])
		c.End.G.D[j] += math.Exp(alpha.At(T-1, j)+c.End.W.D[j]-logZ) - b2f(j == gold[T-1])
	}
	for t := 1; t < T; t++ {
		for i := 0; i < K; i++ {
			for j := 0; j < K; j++ {
				p := math.Exp(alpha.At(t-1, i) + c.Trans.W.At(i, j) + em.At(t, j) + beta.At(t, j) - logZ)
				g := p
				if i == gold[t-1] && j == gold[t] {
					g -= 1
				}
				c.Trans.G.Add(i, j, g)
			}
		}
	}
	return loss, dEmissions
}

// Decode returns the Viterbi-optimal tag sequence for emissions.
func (c *CRF) Decode(em *Mat) []int {
	T, K := em.R, c.K
	if T == 0 {
		return nil
	}
	score := NewMat(T, K)
	back := make([][]int, T)
	for t := range back {
		back[t] = make([]int, K)
	}
	for j := 0; j < K; j++ {
		score.Set(0, j, c.Start.W.D[j]+em.At(0, j))
	}
	for t := 1; t < T; t++ {
		for j := 0; j < K; j++ {
			best, arg := math.Inf(-1), 0
			for i := 0; i < K; i++ {
				s := score.At(t-1, i) + c.Trans.W.At(i, j)
				if s > best {
					best, arg = s, i
				}
			}
			score.Set(t, j, best+em.At(t, j))
			back[t][j] = arg
		}
	}
	best, arg := math.Inf(-1), 0
	for j := 0; j < K; j++ {
		s := score.At(T-1, j) + c.End.W.D[j]
		if s > best {
			best, arg = s, j
		}
	}
	path := make([]int, T)
	path[T-1] = arg
	for t := T - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
