// Package storytree implements §4's story-tree formation: retrieve events
// correlated with a seed event, score pairwise similarity (Eq. 8–11:
// phrase-encoding cosine + trigger-vector cosine + entity-set TF-IDF
// similarity), cluster hierarchically, and assemble a time-ordered tree
// whose branches are the clusters.
package storytree

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/phrase"
)

// EventNode is one event offered to story-tree formation.
type EventNode struct {
	// ID is the event's union node ID when extracted from an ontology view
	// (zero for hand-built nodes). Sharded serving merges per-shard
	// fragment lists by ascending ID to reproduce the union's candidate
	// order.
	ID       ontology.NodeID `json:"id,omitempty"`
	Phrase   string          `json:"phrase"`
	Trigger  string          `json:"trigger,omitempty"`
	Entities []string        `json:"entities,omitempty"`
	Location string          `json:"location,omitempty"`
	Day      int             `json:"day,omitempty"`
	Docs     []string        `json:"docs,omitempty"` // titles of documents tagged with this event
}

// Encoder supplies dense phrase/word vectors (the BERT / skip-gram
// substitute — any embedding with meaningful cosine works).
type Encoder interface {
	PhraseVector(phrase string) []float64
	WordVector(word string) []float64
}

// Options configure formation.
type Options struct {
	// LinkThreshold is the minimum similarity for two events to share a
	// cluster during agglomerative clustering.
	LinkThreshold float64
	// RequireSharedEntityOrTrigger restricts retrieval per §4 ("share at
	// least one common child entity ... or force the triggers to be the
	// same").
	RequireSharedEntityOrTrigger bool
}

// DefaultOptions mirror the paper's retrieval criteria.
func DefaultOptions() Options {
	return Options{LinkThreshold: 1.2, RequireSharedEntityOrTrigger: true}
}

// Similarity is Eq. (8): s = fm + fg + fe.
func Similarity(a, b *EventNode, enc Encoder, tfidf *phrase.TFIDF) float64 {
	return fm(a, b, enc) + fg(a, b, enc) + fe(a, b, tfidf)
}

// fm is Eq. (9): cosine similarity of phrase encodings.
func fm(a, b *EventNode, enc Encoder) float64 {
	return cos(enc.PhraseVector(a.Phrase), enc.PhraseVector(b.Phrase))
}

// fg is Eq. (10): cosine similarity of trigger word vectors.
func fg(a, b *EventNode, enc Encoder) float64 {
	if a.Trigger == "" || b.Trigger == "" {
		return 0
	}
	if a.Trigger == b.Trigger {
		return 1
	}
	return cos(enc.WordVector(a.Trigger), enc.WordVector(b.Trigger))
}

// fe is Eq. (11): TF-IDF similarity of the entity sets.
func fe(a, b *EventNode, tfidf *phrase.TFIDF) float64 {
	return phrase.Cosine(tfidf.Vector(a.Entities), tfidf.Vector(b.Entities))
}

// Tree is a story tree: a root story node whose branches are event chains.
type Tree struct {
	Seed     string
	Branches [][]*EventNode // each branch is time-ordered
}

// Retrieve filters candidates down to events correlated with the seed.
func Retrieve(seed *EventNode, candidates []*EventNode, opt Options) []*EventNode {
	out := []*EventNode{seed}
	seedEnts := map[string]bool{}
	for _, e := range seed.Entities {
		seedEnts[e] = true
	}
	for _, c := range candidates {
		if c == seed || c.Phrase == seed.Phrase {
			continue
		}
		if opt.RequireSharedEntityOrTrigger {
			shared := c.Trigger != "" && c.Trigger == seed.Trigger
			for _, e := range c.Entities {
				if seedEnts[e] {
					shared = true
					break
				}
			}
			if !shared {
				continue
			}
		}
		out = append(out, c)
	}
	return out
}

// Form builds the story tree for seed from the candidate events.
func Form(seed *EventNode, candidates []*EventNode, enc Encoder, opt Options) *Tree {
	events := Retrieve(seed, candidates, opt)
	// Entity-set TF-IDF statistics over the retrieved events.
	tfidf := phrase.NewTFIDF()
	for _, e := range events {
		tfidf.AddDoc(e.Entities)
	}
	// Pairwise similarity matrix.
	n := len(events)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			if i != j {
				sim[i][j] = Similarity(events[i], events[j], enc, tfidf)
			}
		}
	}
	clusters := agglomerate(sim, opt.LinkThreshold)

	tree := &Tree{Seed: seed.Phrase}
	for _, cl := range clusters {
		branch := make([]*EventNode, 0, len(cl))
		for _, i := range cl {
			branch = append(branch, events[i])
		}
		sort.SliceStable(branch, func(a, b int) bool { return branch[a].Day < branch[b].Day })
		tree.Branches = append(tree.Branches, branch)
	}
	// Order branches by their earliest event.
	sort.SliceStable(tree.Branches, func(a, b int) bool {
		return tree.Branches[a][0].Day < tree.Branches[b][0].Day
	})
	return tree
}

// agglomerate is average-linkage hierarchical clustering that stops when no
// pair of clusters exceeds the threshold.
func agglomerate(sim [][]float64, threshold float64) [][]int {
	n := len(sim)
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	for {
		bi, bj, best := -1, -1, threshold
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				s := avgLink(sim, clusters[i], clusters[j])
				if s > best {
					bi, bj, best = i, j, s
				}
			}
		}
		if bi < 0 {
			break
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	return clusters
}

func avgLink(sim [][]float64, a, b []int) float64 {
	s := 0.0
	for _, i := range a {
		for _, j := range b {
			s += sim[i][j]
		}
	}
	return s / float64(len(a)*len(b))
}

// Events returns all events in the tree, time-ordered.
func (t *Tree) Events() []*EventNode {
	var out []*EventNode
	for _, b := range t.Branches {
		out = append(out, b...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}

// FollowUps returns events in the tree occurring after day — the
// recommendation payload ("recommend follow-up events", §4).
func (t *Tree) FollowUps(day int) []*EventNode {
	var out []*EventNode
	for _, e := range t.Events() {
		if e.Day > day {
			out = append(out, e)
		}
	}
	return out
}

// Render prints the tree in a Figure 5 style layout.
func (t *Tree) Render(w io.Writer) {
	fmt.Fprintf(w, "story: %s\n", t.Seed)
	for bi, branch := range t.Branches {
		fmt.Fprintf(w, "  branch %d:\n", bi+1)
		for _, e := range branch {
			loc := e.Location
			if loc != "" {
				loc = " @" + loc
			}
			fmt.Fprintf(w, "    day %2d  %s%s\n", e.Day, e.Phrase, loc)
		}
	}
}

// BagOfTokensEncoder is a simple Encoder averaging word vectors from a
// lookup; unknown words hash to a deterministic pseudo-vector so cosine
// stays meaningful on synthetic vocabularies.
type BagOfTokensEncoder struct {
	Dim     int
	Vectors map[string][]float64
}

// NewBagOfTokensEncoder wraps a word-vector table.
func NewBagOfTokensEncoder(dim int, vectors map[string][]float64) *BagOfTokensEncoder {
	return &BagOfTokensEncoder{Dim: dim, Vectors: vectors}
}

// WordVector implements Encoder.
func (b *BagOfTokensEncoder) WordVector(word string) []float64 {
	if v, ok := b.Vectors[word]; ok {
		return v
	}
	// Deterministic hash vector.
	v := make([]float64, b.Dim)
	h := uint64(1469598103934665603)
	for _, c := range word {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for i := range v {
		h = h*6364136223846793005 + 1442695040888963407
		v[i] = float64(int64(h>>33))/float64(1<<30) - 1
	}
	return v
}

// PhraseVector implements Encoder: the mean of non-stop word vectors.
func (b *BagOfTokensEncoder) PhraseVector(p string) []float64 {
	out := make([]float64, b.Dim)
	n := 0
	for _, t := range nlp.Tokenize(p) {
		if nlp.IsStopWord(t) {
			continue
		}
		v := b.WordVector(t)
		for i := range out {
			out[i] += v[i]
		}
		n++
	}
	if n > 0 {
		for i := range out {
			out[i] /= float64(n)
		}
	}
	return out
}

func cos(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Summary returns a one-line description for logs.
func (t *Tree) Summary() string {
	total := 0
	for _, b := range t.Branches {
		total += len(b)
	}
	return fmt.Sprintf("%d events in %d branches (seed %q)", total, len(t.Branches), strings.TrimSpace(t.Seed))
}
