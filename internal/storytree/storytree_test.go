package storytree

import (
	"bytes"
	"strings"
	"testing"

	"giant/internal/phrase"
)

func newTF(events []*EventNode) *phrase.TFIDF {
	tf := phrase.NewTFIDF()
	for _, e := range events {
		tf.AddDoc(e.Entities)
	}
	return tf
}

func enc() Encoder { return NewBagOfTokensEncoder(8, nil) }

func ev(phrase, trigger string, day int, ents ...string) *EventNode {
	return &EventNode{Phrase: phrase, Trigger: trigger, Day: day, Entities: ents}
}

func TestRetrieveSharedEntityOrTrigger(t *testing.T) {
	seed := ev("acme release earnings", "release", 1, "acme")
	cands := []*EventNode{
		ev("acme announce merger", "announce", 2, "acme"),     // shared entity
		ev("globex release earnings", "release", 3, "globex"), // shared trigger
		ev("unrelated thing happen", "happen", 4, "nobody"),   // neither
	}
	got := Retrieve(seed, cands, DefaultOptions())
	if len(got) != 3 { // seed + two related
		t.Fatalf("retrieved %d", len(got))
	}
	for _, e := range got {
		if e.Phrase == "unrelated thing happen" {
			t.Fatal("unrelated event retrieved")
		}
	}
	// Without the restriction everything comes back.
	opt := DefaultOptions()
	opt.RequireSharedEntityOrTrigger = false
	if got := Retrieve(seed, cands, opt); len(got) != 4 {
		t.Fatalf("unrestricted retrieve = %d", len(got))
	}
}

func TestSimilarityComponents(t *testing.T) {
	e := enc()
	a := ev("acme release earnings", "release", 1, "acme")
	b := ev("acme release earnings again", "release", 2, "acme")
	c := ev("zorp cancel tour", "cancel", 3, "zorp")
	tf := newTF([]*EventNode{a, b, c})
	sAB := Similarity(a, b, e, tf)
	sAC := Similarity(a, c, e, tf)
	if sAB <= sAC {
		t.Fatalf("similar events %v <= dissimilar %v", sAB, sAC)
	}
	// Same trigger contributes the fg term fully.
	if fg(a, b, e) != 1 {
		t.Fatalf("fg same trigger = %v", fg(a, b, e))
	}
}

func TestFormBranchesTimeOrdered(t *testing.T) {
	seed := ev("acme release earnings", "release", 5, "acme")
	cands := []*EventNode{
		ev("acme release earnings preview", "release", 1, "acme"),
		ev("acme release earnings call", "release", 9, "acme"),
		ev("globex release earnings", "release", 3, "globex"),
	}
	tree := Form(seed, cands, enc(), DefaultOptions())
	if len(tree.Branches) == 0 {
		t.Fatal("no branches")
	}
	for _, b := range tree.Branches {
		for i := 1; i < len(b); i++ {
			if b[i].Day < b[i-1].Day {
				t.Fatal("branch not time-ordered")
			}
		}
	}
	evs := tree.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Day < evs[i-1].Day {
			t.Fatal("Events() not time-ordered")
		}
	}
	// Follow-ups strictly after the given day.
	for _, f := range tree.FollowUps(5) {
		if f.Day <= 5 {
			t.Fatalf("follow-up on day %d", f.Day)
		}
	}
}

func TestRenderAndSummary(t *testing.T) {
	seed := ev("acme release earnings", "release", 1, "acme")
	tree := Form(seed, nil, enc(), DefaultOptions())
	var buf bytes.Buffer
	tree.Render(&buf)
	if !strings.Contains(buf.String(), "acme release earnings") {
		t.Fatalf("render output: %s", buf.String())
	}
	if !strings.Contains(tree.Summary(), "1 events") {
		t.Fatalf("summary: %s", tree.Summary())
	}
}

func TestEncoderProperties(t *testing.T) {
	e := NewBagOfTokensEncoder(8, map[string][]float64{"known": {1, 0, 0, 0, 0, 0, 0, 0}})
	if got := e.WordVector("known"); got[0] != 1 {
		t.Fatal("lookup vector ignored")
	}
	// Hash vectors are deterministic.
	a := e.WordVector("mystery")
	b := e.WordVector("mystery")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("hash vector not deterministic")
		}
	}
	// Phrase vector ignores stop words.
	pv := e.PhraseVector("the known")
	if pv[0] != 1 {
		t.Fatalf("phrase vector = %v", pv)
	}
}
