package storytree

import (
	"sort"

	"giant/internal/ontology"
)

// EventsFromView reconstructs story-tree event nodes from the ontology
// itself: every Event node contributes its phrase, trigger, location and
// day, with its entity set read off the Involve edges §3.2 linked. This is
// the serving-time path — an online tier holding only a built (or
// re-loaded) ontology can form story trees without the mining byproducts
// the offline pipeline keeps in memory.
func EventsFromView(v ontology.View) []*EventNode {
	return FragmentsFromScope(ontology.UnionScope(v))
}

// FragmentsFromScope extracts the scope's home events as story-tree
// candidates in ascending union-ID order (see ontology.Scope). A home
// event's Involve edges are all present in its scope, and entity endpoints
// carry exact phrases even as ghosts, so each fragment is complete; merging
// per-scope fragments with MergeFragments reproduces EventsFromView over
// the union exactly.
func FragmentsFromScope(scope ontology.Scope) []*EventNode {
	var out []*EventNode
	for _, n := range scope.HomeNodes(ontology.Event) {
		node := &EventNode{
			ID:       n.ID,
			Phrase:   n.Phrase,
			Trigger:  n.Trigger,
			Location: n.Location,
			Day:      n.Day,
		}
		if _, local, ok := scope.FindHome(ontology.Event, n.Phrase); ok {
			for _, ch := range scope.View.Children(local, ontology.Involve) {
				if ch.Type == ontology.Entity {
					node.Entities = append(node.Entities, ch.Phrase)
				}
			}
		}
		out = append(out, node)
	}
	return out
}

// MergeFragments combines per-scope fragment lists into the union candidate
// list, ordered by ascending union ID — the order EventsFromView produces,
// which story-tree formation (and therefore branch composition) depends on.
func MergeFragments(parts ...[]*EventNode) []*EventNode {
	var all []*EventNode
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// FormFromView builds the story tree seeded at seedPhrase from the events
// recorded in the ontology view, using enc for phrase/trigger similarity.
// It returns false when seedPhrase is not an event in the view.
func FormFromView(v ontology.View, seedPhrase string, enc Encoder, opt Options) (*Tree, bool) {
	return FormFromEvents(EventsFromView(v), seedPhrase, enc, opt)
}

// FormFromEvents is FormFromView over an already-materialized candidate
// list — a server that holds one immutable snapshot can extract the events
// once and form trees for many seeds without re-walking the ontology.
// Formation only reads the candidates, so a shared list may serve
// concurrent calls.
func FormFromEvents(candidates []*EventNode, seedPhrase string, enc Encoder, opt Options) (*Tree, bool) {
	var seed *EventNode
	for _, c := range candidates {
		if c.Phrase == seedPhrase {
			seed = c
			break
		}
	}
	if seed == nil {
		return nil, false
	}
	return Form(seed, candidates, enc, opt), true
}
