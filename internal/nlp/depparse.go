package nlp

// DepRel is a dependency relation label.
type DepRel uint8

// Dependency relation inventory. These become R-GCN edge relation types in
// the Query-Title Interaction Graph (each also has an implicit reverse
// direction added by the graph builder).
const (
	DepNone DepRel = iota
	DepCompound
	DepAmod
	DepAdvmod
	DepDobj
	DepNsubj
	DepPrep
	DepPobj
	DepDet
	DepNum
	DepPunct
	DepDep
	numDepRel
)

// NumDepRel is the number of dependency relation labels.
const NumDepRel = int(numDepRel)

// String returns the Universal-Dependencies-style label.
func (d DepRel) String() string {
	switch d {
	case DepCompound:
		return "compound"
	case DepAmod:
		return "amod"
	case DepAdvmod:
		return "advmod"
	case DepDobj:
		return "dobj"
	case DepNsubj:
		return "nsubj"
	case DepPrep:
		return "prep"
	case DepPobj:
		return "pobj"
	case DepDet:
		return "det"
	case DepNum:
		return "num"
	case DepPunct:
		return "punct"
	case DepDep:
		return "dep"
	default:
		return "none"
	}
}

// Arc is one dependency edge: token at Dependent attaches to token at Head
// with relation Rel. Head == -1 marks the sentence root.
type Arc struct {
	Head      int
	Dependent int
	Rel       DepRel
}

// ParseDeps produces a deterministic dependency analysis of an annotated
// token sequence. It is a rule-based shallow parser, not a statistical one:
// noun compounds chain left-to-right onto the final noun of each noun phrase,
// adjectives/determiners/numbers attach to the next noun, the first main verb
// becomes the root, the noun phrase before the verb is nsubj, the one after
// is dobj, prepositions head their following noun phrase (pobj) and attach to
// the preceding head (prep). This reproduces the arc types the paper's QTIG
// consumes (compound:nn, amod, dobj, punct, ...).
func ParseDeps(tokens []Token) []Arc {
	n := len(tokens)
	if n == 0 {
		return nil
	}
	arcs := make([]Arc, 0, n)
	heads := make([]int, n)
	for i := range heads {
		heads[i] = -2 // unassigned
	}

	// Locate the first main verb (skip auxiliaries that are stop words).
	verb := -1
	for i, t := range tokens {
		if t.POS == PosVerb && !t.Stop {
			verb = i
			break
		}
	}
	if verb == -1 {
		for i, t := range tokens {
			if t.POS == PosVerb {
				verb = i
				break
			}
		}
	}

	// npHead returns the index of the last noun-ish token of the noun phrase
	// starting at i, and the index just past the phrase.
	npHead := func(i int) (head, end int) {
		head = -1
		j := i
		for j < n {
			switch tokens[j].POS {
			case PosNoun, PosPropn, PosNum, PosAdj, PosDet, PosPron:
				if tokens[j].POS == PosNoun || tokens[j].POS == PosPropn {
					head = j
				}
				j++
			default:
				if head == -1 {
					head = j - 1
				}
				return head, j
			}
		}
		if head == -1 {
			head = j - 1
		}
		return head, j
	}

	attach := func(dep, head int, rel DepRel) {
		if dep < 0 || dep >= n || dep == head || heads[dep] != -2 {
			return
		}
		heads[dep] = head
		arcs = append(arcs, Arc{Head: head, Dependent: dep, Rel: rel})
	}

	// Pass 1: noun-phrase internal structure.
	for i := 0; i < n; {
		t := tokens[i]
		if t.POS == PosNoun || t.POS == PosPropn || t.POS == PosAdj ||
			t.POS == PosDet || t.POS == PosNum {
			head, end := npHead(i)
			for j := i; j < end; j++ {
				if j == head {
					continue
				}
				switch tokens[j].POS {
				case PosNoun, PosPropn:
					attach(j, head, DepCompound)
				case PosAdj:
					attach(j, head, DepAmod)
				case PosDet:
					attach(j, head, DepDet)
				case PosNum:
					attach(j, head, DepNum)
				default:
					attach(j, head, DepDep)
				}
			}
			i = end
			continue
		}
		i++
	}

	// Pass 2: clause structure around the root verb.
	root := verb
	if root == -1 {
		// Nominal sentence: root is the head of the first noun phrase.
		root, _ = npHead(0)
		if root < 0 {
			root = 0
		}
	}
	heads[root] = -1
	arcs = append(arcs, Arc{Head: -1, Dependent: root, Rel: DepDep})

	if verb >= 0 {
		// Subject: nearest NP head to the left of the verb.
		for j := verb - 1; j >= 0; j-- {
			if heads[j] == -2 && (tokens[j].POS == PosNoun || tokens[j].POS == PosPropn || tokens[j].POS == PosPron) {
				attach(j, verb, DepNsubj)
				break
			}
		}
		// Object: nearest NP head to the right of the verb.
		for j := verb + 1; j < n; j++ {
			if heads[j] == -2 && (tokens[j].POS == PosNoun || tokens[j].POS == PosPropn) {
				attach(j, verb, DepDobj)
				break
			}
		}
	}

	// Pass 3: prepositions, adverbs, punctuation, leftovers.
	for i := 0; i < n; i++ {
		if heads[i] != -2 {
			continue
		}
		switch tokens[i].POS {
		case PosPrep:
			attach(i, root, DepPrep)
			// Its object: next unattached or NP-head noun.
			for j := i + 1; j < n; j++ {
				if tokens[j].POS == PosNoun || tokens[j].POS == PosPropn || tokens[j].POS == PosNum {
					if heads[j] == -2 {
						attach(j, i, DepPobj)
					}
					break
				}
			}
		case PosAdv:
			attach(i, root, DepAdvmod)
		case PosPunct:
			attach(i, root, DepPunct)
		case PosVerb:
			attach(i, root, DepDep)
		}
	}
	for i := 0; i < n; i++ {
		if heads[i] == -2 {
			attach(i, root, DepDep)
		}
	}
	return arcs
}
