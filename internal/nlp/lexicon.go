package nlp

import "strings"

// defaultStopWords is the built-in stop list. It deliberately includes the
// query "noise" words the paper's mining step must learn to drop (what, best,
// famous, top, ...), mirroring how the original system treats Chinese
// function words and query chrome.
var defaultStopWords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "in": true, "on": true,
	"at": true, "to": true, "for": true, "and": true, "or": true, "is": true,
	"are": true, "was": true, "were": true, "be": true, "been": true,
	"what": true, "which": true, "who": true, "whose": true, "how": true,
	"when": true, "where": true, "why": true, "do": true, "does": true,
	"did": true, "have": true, "has": true, "had": true, "will": true,
	"would": true, "can": true, "could": true, "should": true, "shall": true,
	"there": true, "this": true, "that": true, "these": true, "those": true,
	"it": true, "its": true, "with": true, "about": true, "list": true,
	"please": true, "me": true, "my": true, "your": true, "their": true,
	"s": true, "'s": true, "?": true, "!": true, ".": true, ",": true,
	"review": true, "reviews": true, "introduction": true, "guide": true,
	"recommend": true, "recommended": true, "recommendation": true,
	"best": true, "top": true, "famous": true, "classic": true,
	"popular": true, "well-known": true, "latest": true, "most": true,
	"some": true, "all": true, "any": true,
}

// IsStopWord reports whether w (already lower-case) is in the built-in stop
// list.
func IsStopWord(w string) bool { return defaultStopWords[w] }

// Lexicon maps surface forms to POS and NER tags. The synthetic world
// registers its vocabulary here; Annotate falls back to rules for unknown
// words.
type Lexicon struct {
	pos      map[string]POS
	ner      map[string]NER
	synonyms map[string]string // surface form -> canonical form
}

// NewLexicon returns an empty lexicon.
func NewLexicon() *Lexicon {
	return &Lexicon{
		pos:      make(map[string]POS),
		ner:      make(map[string]NER),
		synonyms: make(map[string]string),
	}
}

// Register adds a (possibly multi-token) surface form with the given tags.
// Multi-token forms are registered token by token so the tokenizer's output
// can be annotated without a phrase table.
func (l *Lexicon) Register(surface string, pos POS, ner NER) {
	for _, tok := range Tokenize(surface) {
		// First registration wins: world generation registers the most
		// specific sense (entity names) before generic vocabulary.
		if _, ok := l.pos[tok]; !ok {
			l.pos[tok] = pos
		}
		if _, ok := l.ner[tok]; !ok && ner != NerNone {
			l.ner[tok] = ner
		}
	}
}

// RegisterSynonym records that surface is an alias of canonical (both
// lower-case). Phrase normalization consults this.
func (l *Lexicon) RegisterSynonym(surface, canonical string) {
	l.synonyms[strings.ToLower(surface)] = strings.ToLower(canonical)
}

// Canonical returns the canonical form of w, or w itself.
func (l *Lexicon) Canonical(w string) string {
	if c, ok := l.synonyms[w]; ok {
		return c
	}
	return w
}

// POSOf returns the registered POS for w, falling back to heuristics:
// digits are NUM, punctuation is PUNCT, words ending in common verb/adjective
// suffixes get those tags, everything else is NOUN.
func (l *Lexicon) POSOf(w string) POS {
	if p, ok := l.pos[w]; ok {
		return p
	}
	return GuessPOS(w)
}

// NEROf returns the registered NER tag for w (NerNone if absent).
func (l *Lexicon) NEROf(w string) NER {
	if n, ok := l.ner[w]; ok {
		return n
	}
	if looksLikeYear(w) {
		return NerTime
	}
	return NerNone
}

// GuessPOS tags an out-of-lexicon word with suffix/shape heuristics.
func GuessPOS(w string) POS {
	if w == "" {
		return PosOther
	}
	r := rune(w[0])
	switch {
	case isPunctText(w):
		return PosPunct
	case r >= '0' && r <= '9':
		return PosNum
	}
	if defaultStopWords[w] {
		switch w {
		case "the", "a", "an", "this", "that", "these", "those":
			return PosDet
		case "of", "in", "on", "at", "to", "for", "with", "about":
			return PosPrep
		case "and", "or":
			return PosConj
		case "is", "are", "was", "were", "be", "been", "do", "does", "did",
			"have", "has", "had", "will", "would", "can", "could", "should",
			"shall":
			return PosVerb
		case "it", "its", "me", "my", "your", "their", "who", "whose":
			return PosPron
		}
	}
	// Suffix heuristics require a stem of at least three characters so short
	// nouns ("table", "used") are not misclassified.
	hasSuf := func(suf string) bool {
		return strings.HasSuffix(w, suf) && len(w) >= len(suf)+3
	}
	switch {
	case hasSuf("ly"):
		return PosAdv
	case hasSuf("ing") || hasSuf("ized") || hasSuf("ize") || hasSuf("ise"):
		return PosVerb
	case hasSuf("ous") || hasSuf("ful") || hasSuf("ive") || hasSuf("able") ||
		hasSuf("ish") || strings.Contains(w, "-"):
		return PosAdj
	}
	return PosNoun
}

func looksLikeYear(w string) bool {
	if len(w) != 4 {
		return false
	}
	for _, r := range w {
		if r < '0' || r > '9' {
			return false
		}
	}
	return w[0] == '1' || w[0] == '2'
}

// Annotate tokenizes s and tags every token using the lexicon.
func (l *Lexicon) Annotate(s string) []Token {
	words := Tokenize(s)
	out := make([]Token, len(words))
	for i, w := range words {
		out[i] = Token{
			Text: w,
			POS:  l.POSOf(w),
			NER:  l.NEROf(w),
			Stop: IsStopWord(w),
		}
	}
	return out
}

// AnnotateTokens tags an already-tokenized sequence.
func (l *Lexicon) AnnotateTokens(words []string) []Token {
	out := make([]Token, len(words))
	for i, w := range words {
		out[i] = Token{Text: w, POS: l.POSOf(w), NER: l.NEROf(w), Stop: IsStopWord(w)}
	}
	return out
}
