// Package nlp provides the lightweight natural-language substrate GIANT
// depends on: tokenization, stop-word detection, lexicon-driven
// part-of-speech and named-entity annotation, and a deterministic rule-based
// dependency parser. The paper's pipeline runs on a full Chinese NLP stack;
// this package supplies the same token-level signals (adjacency, POS, NER,
// dependency arcs) over the synthetic English-like corpus used in this
// reproduction.
package nlp

import (
	"strings"
	"unicode"
)

// POS is a coarse part-of-speech tag.
type POS uint8

// Coarse POS inventory. The QTIG featurizer embeds these; the dependency
// parser keys its rules off them.
const (
	PosOther POS = iota
	PosNoun
	PosPropn
	PosVerb
	PosAdj
	PosAdv
	PosNum
	PosPron
	PosPrep
	PosDet
	PosConj
	PosPunct
	numPOS
)

// NumPOS is the number of distinct POS tags (embedding table size).
const NumPOS = int(numPOS)

// String returns the conventional short name of the tag.
func (p POS) String() string {
	switch p {
	case PosNoun:
		return "NOUN"
	case PosPropn:
		return "PROPN"
	case PosVerb:
		return "VERB"
	case PosAdj:
		return "ADJ"
	case PosAdv:
		return "ADV"
	case PosNum:
		return "NUM"
	case PosPron:
		return "PRON"
	case PosPrep:
		return "ADP"
	case PosDet:
		return "DET"
	case PosConj:
		return "CONJ"
	case PosPunct:
		return "PUNCT"
	default:
		return "X"
	}
}

// NER is a coarse named-entity tag.
type NER uint8

// NER inventory used by the event key-element recognizer (entities,
// locations, times) and the QTIG featurizer.
const (
	NerNone NER = iota
	NerPerson
	NerOrg
	NerLoc
	NerTime
	NerProduct
	NerWork
	NerMisc
	numNER
)

// NumNER is the number of distinct NER tags (embedding table size).
const NumNER = int(numNER)

// String returns the conventional short name of the tag.
func (n NER) String() string {
	switch n {
	case NerPerson:
		return "PER"
	case NerOrg:
		return "ORG"
	case NerLoc:
		return "LOC"
	case NerTime:
		return "TIME"
	case NerProduct:
		return "PROD"
	case NerWork:
		return "WORK"
	case NerMisc:
		return "MISC"
	default:
		return "O"
	}
}

// Token is a single annotated token.
type Token struct {
	Text string
	POS  POS
	NER  NER
	Stop bool
}

// Tokenize lower-cases s and splits it into word, number and punctuation
// tokens. Hyphenated words are kept whole ("fuel-efficient") because the
// synthetic lexicon treats them as single modifiers.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '\'':
			cur.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			out = append(out, string(r))
		}
	}
	flush()
	return out
}

// JoinTokens renders a token slice back to a display string, attaching
// punctuation to the preceding token.
func JoinTokens(tokens []string) string {
	var b strings.Builder
	for i, t := range tokens {
		if i > 0 && !isPunctText(t) {
			b.WriteByte(' ')
		}
		b.WriteString(t)
	}
	return b.String()
}

func isPunctText(t string) bool {
	if t == "" {
		return false
	}
	r := rune(t[0])
	return !unicode.IsLetter(r) && !unicode.IsDigit(r)
}
