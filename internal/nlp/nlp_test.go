package nlp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"What are the Best Cars?", []string{"what", "are", "the", "best", "cars", "?"}},
		{"fuel-efficient cars", []string{"fuel-efficient", "cars"}},
		{"a,b", []string{"a", ",", "b"}},
		{"", nil},
		{"   ", nil},
		{"top 10 movies", []string{"top", "10", "movies"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestTokenizeNeverEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeIdempotentOnJoin(t *testing.T) {
	// Tokenizing the joined tokens reproduces the tokens (for word tokens).
	f := func(s string) bool {
		toks := Tokenize(s)
		again := Tokenize(strings.Join(toks, " "))
		if len(again) != len(toks) {
			return false
		}
		for i := range toks {
			if toks[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinTokensPunctuation(t *testing.T) {
	got := JoinTokens([]string{"what", "are", "cars", "?"})
	if got != "what are cars?" {
		t.Fatalf("JoinTokens = %q", got)
	}
}

func TestLexiconRegisterAndLookup(t *testing.T) {
	lex := NewLexicon()
	lex.Register("honda civic", PosPropn, NerProduct)
	lex.Register("car", PosNoun, NerNone)
	if got := lex.POSOf("honda"); got != PosPropn {
		t.Fatalf("POSOf(honda) = %v", got)
	}
	if got := lex.NEROf("civic"); got != NerProduct {
		t.Fatalf("NEROf(civic) = %v", got)
	}
	if got := lex.NEROf("car"); got != NerNone {
		t.Fatalf("NEROf(car) = %v", got)
	}
	// First registration wins.
	lex.Register("car", PosVerb, NerPerson)
	if got := lex.POSOf("car"); got != PosNoun {
		t.Fatalf("re-registration changed POS: %v", got)
	}
}

func TestLexiconFallbacks(t *testing.T) {
	lex := NewLexicon()
	if got := lex.POSOf("2019"); got != PosNum {
		t.Fatalf("year POS = %v", got)
	}
	if got := lex.NEROf("2019"); got != NerTime {
		t.Fatalf("year NER = %v", got)
	}
	if got := lex.POSOf("?"); got != PosPunct {
		t.Fatalf("punct POS = %v", got)
	}
	if got := lex.POSOf("quickly"); got != PosAdv {
		t.Fatalf("adverb POS = %v", got)
	}
	if got := lex.POSOf("running"); got != PosVerb {
		t.Fatalf("verb POS = %v", got)
	}
	if got := lex.POSOf("fuel-efficient"); got != PosAdj {
		t.Fatalf("hyphenated adjective POS = %v", got)
	}
	if got := lex.POSOf("table"); got != PosNoun {
		t.Fatalf("default POS = %v", got)
	}
}

func TestSynonyms(t *testing.T) {
	lex := NewLexicon()
	lex.RegisterSynonym("automobile", "car")
	if got := lex.Canonical("automobile"); got != "car" {
		t.Fatalf("Canonical = %q", got)
	}
	if got := lex.Canonical("plane"); got != "plane" {
		t.Fatalf("Canonical passthrough = %q", got)
	}
}

func TestStopWords(t *testing.T) {
	for _, w := range []string{"the", "what", "best", "?"} {
		if !IsStopWord(w) {
			t.Fatalf("%q should be a stop word", w)
		}
	}
	for _, w := range []string{"car", "concert", "honda"} {
		if IsStopWord(w) {
			t.Fatalf("%q should not be a stop word", w)
		}
	}
}

func TestAnnotate(t *testing.T) {
	lex := NewLexicon()
	lex.Register("miyazaki", PosPropn, NerPerson)
	toks := lex.Annotate("What are Miyazaki movies?")
	if len(toks) != 5 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if toks[2].NER != NerPerson {
		t.Fatalf("miyazaki NER = %v", toks[2].NER)
	}
	if !toks[0].Stop {
		t.Fatal("'what' should be a stop token")
	}
}

func TestParseDepsNounPhrase(t *testing.T) {
	lex := NewLexicon()
	lex.Register("miyazaki", PosPropn, NerPerson)
	lex.Register("animated", PosAdj, NerNone)
	lex.Register("film", PosNoun, NerNone)
	toks := lex.AnnotateTokens([]string{"miyazaki", "animated", "film"})
	arcs := ParseDeps(toks)
	var compound, amod bool
	for _, a := range arcs {
		if a.Rel == DepCompound && a.Dependent == 0 && a.Head == 2 {
			compound = true
		}
		if a.Rel == DepAmod && a.Dependent == 1 && a.Head == 2 {
			amod = true
		}
	}
	if !compound || !amod {
		t.Fatalf("missing NP-internal arcs: %+v", arcs)
	}
}

func TestParseDepsClause(t *testing.T) {
	lex := NewLexicon()
	lex.Register("singer", PosNoun, NerNone)
	lex.Register("hold", PosVerb, NerNone)
	lex.Register("concert", PosNoun, NerNone)
	toks := lex.AnnotateTokens([]string{"singer", "hold", "concert"})
	arcs := ParseDeps(toks)
	var nsubj, dobj, root bool
	for _, a := range arcs {
		if a.Rel == DepNsubj && a.Dependent == 0 && a.Head == 1 {
			nsubj = true
		}
		if a.Rel == DepDobj && a.Dependent == 2 && a.Head == 1 {
			dobj = true
		}
		if a.Head == -1 && a.Dependent == 1 {
			root = true
		}
	}
	if !nsubj || !dobj || !root {
		t.Fatalf("clause structure wrong: %+v", arcs)
	}
}

func TestParseDepsAllTokensAttached(t *testing.T) {
	lex := NewLexicon()
	f := func(raw string) bool {
		toks := lex.Annotate(raw)
		if len(toks) == 0 {
			return true
		}
		arcs := ParseDeps(toks)
		attached := map[int]bool{}
		for _, a := range arcs {
			if a.Dependent < 0 || a.Dependent >= len(toks) {
				return false
			}
			if attached[a.Dependent] {
				return false // each token has exactly one head
			}
			attached[a.Dependent] = true
		}
		return len(attached) == len(toks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseDepsEmpty(t *testing.T) {
	if arcs := ParseDeps(nil); arcs != nil {
		t.Fatalf("ParseDeps(nil) = %v", arcs)
	}
}

func TestPOSAndNERStrings(t *testing.T) {
	if PosNoun.String() != "NOUN" || PosPunct.String() != "PUNCT" {
		t.Fatal("POS String broken")
	}
	if NerPerson.String() != "PER" || NerNone.String() != "O" {
		t.Fatal("NER String broken")
	}
	if DepCompound.String() != "compound" || DepAmod.String() != "amod" {
		t.Fatal("DepRel String broken")
	}
}
