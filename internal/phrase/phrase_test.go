package phrase

import (
	"math"
	"testing"

	"giant/internal/nlp"
)

func TestTFIDFVectorAndCosine(t *testing.T) {
	m := NewTFIDF()
	m.AddDoc([]string{"a", "b"})
	m.AddDoc([]string{"a", "c"})
	va := m.Vector([]string{"a", "b"})
	vb := m.Vector([]string{"a", "b"})
	if s := Cosine(va, vb); math.Abs(s-1) > 1e-9 {
		t.Fatalf("identical vectors cosine = %v", s)
	}
	vc := m.Vector([]string{"zz"})
	if s := Cosine(va, vc); s != 0 {
		t.Fatalf("disjoint vectors cosine = %v", s)
	}
	// Rare term "b" must outweigh common term "a".
	if va["b"] <= va["a"] {
		t.Fatalf("idf weighting broken: a=%v b=%v", va["a"], va["b"])
	}
}

func TestNormalizerMergesSimilar(t *testing.T) {
	n := NewNormalizer(nil, 0.2)
	ctx1 := []string{"top economy cars of the year", "economy cars review"}
	ctx2 := []string{"economy cars review", "best economy cars list"}
	n.Observe("economy cars", ctx1)
	n.Observe("cars economy", ctx2) // same non-stop tokens, similar context
	c1, merged1 := n.Add("economy cars", ctx1)
	if merged1 || c1 != "economy cars" {
		t.Fatalf("first phrase should be canonical: %q %v", c1, merged1)
	}
	c2, merged2 := n.Add("cars economy", ctx2)
	if !merged2 || c2 != "economy cars" {
		t.Fatalf("variant should merge: %q %v", c2, merged2)
	}
	canon := n.Canonicals()
	if len(canon) != 1 || len(canon["economy cars"]) != 1 {
		t.Fatalf("canonicals = %v", canon)
	}
}

func TestNormalizerKeepsDistinct(t *testing.T) {
	n := NewNormalizer(nil, 0.2)
	n.Observe("economy cars", []string{"cheap to run vehicles"})
	n.Observe("luxury cars", []string{"premium vehicles"})
	n.Add("economy cars", []string{"cheap to run vehicles"})
	c, merged := n.Add("luxury cars", []string{"premium vehicles"})
	if merged || c != "luxury cars" {
		t.Fatal("distinct phrases must not merge")
	}
}

func TestNormalizerSynonyms(t *testing.T) {
	lex := nlp.NewLexicon()
	lex.RegisterSynonym("automobile", "car")
	n := NewNormalizer(lex, 0.1)
	ctx := []string{"shared context shared context"}
	n.Observe("fast car", ctx)
	n.Observe("fast automobile", ctx)
	n.Add("fast car", ctx)
	_, merged := n.Add("fast automobile", ctx)
	if !merged {
		t.Fatal("synonym-folded phrases should merge")
	}
}

func TestCommonSuffixDiscovery(t *testing.T) {
	lex := nlp.NewLexicon()
	for _, w := range []string{"animated", "award-winning", "famous"} {
		lex.Register(w, nlp.PosAdj, nlp.NerNone)
	}
	lex.Register("film", nlp.PosNoun, nlp.NerNone)
	lex.Register("films", nlp.PosNoun, nlp.NerNone)
	concepts := []string{
		"miyazaki animated films",
		"award-winning animated films",
		"hollywood animated films",
	}
	derived := CommonSuffixDiscovery(concepts, 3, lex)
	found := false
	for _, d := range derived {
		if d.Phrase == "animated films" {
			found = true
			if len(d.Children) != 3 {
				t.Fatalf("children = %v", d.Children)
			}
		}
		if d.Phrase == "films" {
			t.Log("single-noun suffix also derived (allowed)")
		}
	}
	if !found {
		t.Fatalf("'animated films' not derived: %+v", derived)
	}
	// Below threshold: nothing derived.
	if got := CommonSuffixDiscovery(concepts[:2], 3, lex); len(got) != 0 {
		t.Fatalf("minFreq ignored: %+v", got)
	}
}

func TestCSDRejectsVerbSuffixes(t *testing.T) {
	lex := nlp.NewLexicon()
	lex.Register("launch", nlp.PosVerb, nlp.NerNone)
	lex.Register("event", nlp.PosNoun, nlp.NerNone)
	concepts := []string{"a launch", "b launch", "c launch"}
	for _, d := range CommonSuffixDiscovery(concepts, 2, lex) {
		if d.Phrase == "launch" {
			t.Fatal("verb suffix promoted to concept")
		}
	}
}

func TestCommonPatternDiscovery(t *testing.T) {
	events := []EventForCPD{
		{Tokens: []string{"jay", "chou", "hold", "concert"}, EntitySpans: map[int]string{0: "singer", 1: "singer"}, SearchCount: 3},
		{Tokens: []string{"taylor", "swift", "hold", "concert"}, EntitySpans: map[int]string{0: "singer", 1: "singer"}, SearchCount: 4},
		{Tokens: []string{"red", "velvet", "hold", "concert"}, EntitySpans: map[int]string{0: "singer", 1: "singer"}, SearchCount: 2},
	}
	out := CommonPatternDiscovery(events, 2, 5)
	if len(out) != 1 {
		t.Fatalf("patterns = %+v", out)
	}
	if out[0].Phrase != "singer hold concert" {
		t.Fatalf("pattern = %q", out[0].Phrase)
	}
	if len(out[0].Children) != 3 {
		t.Fatalf("children = %v", out[0].Children)
	}
	// Search-count filter.
	if got := CommonPatternDiscovery(events, 2, 100); len(got) != 0 {
		t.Fatal("minSearch ignored")
	}
	// Events without entity spans are skipped.
	if got := CommonPatternDiscovery([]EventForCPD{{Tokens: []string{"x"}}}, 1, 0); len(got) != 0 {
		t.Fatal("span-less events should not form patterns")
	}
}
