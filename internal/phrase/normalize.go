// Package phrase implements attention-phrase post-processing from §3.1:
// normalization (merging near-duplicate phrasings by non-stop-token
// similarity plus TF-IDF similarity of context-enriched representations),
// Common Suffix Discovery for deriving higher-level concepts, and Common
// Pattern Discovery for deriving topics from events.
package phrase

import (
	"math"
	"sort"
	"strings"

	"giant/internal/nlp"
)

// TFIDF is a small TF-IDF vector-space model over token documents.
type TFIDF struct {
	df   map[string]int
	docs int
}

// NewTFIDF returns an empty model.
func NewTFIDF() *TFIDF { return &TFIDF{df: make(map[string]int)} }

// NewTFIDFFromStats reconstructs a model from previously exported stats
// (document count + per-token document frequencies). Because AddDoc only
// increments integer counters, a model rebuilt from merged per-shard stats
// is identical to one fed the same documents directly.
func NewTFIDFFromStats(docs int, df map[string]int) *TFIDF {
	m := &TFIDF{df: make(map[string]int, len(df)), docs: docs}
	for tok, n := range df {
		m.df[tok] = n
	}
	return m
}

// Stats exports the model's document count and a copy of its document
// frequencies, suitable for NewTFIDFFromStats on another process.
func (t *TFIDF) Stats() (docs int, df map[string]int) {
	df = make(map[string]int, len(t.df))
	for tok, n := range t.df {
		df[tok] = n
	}
	return t.docs, df
}

// AddDoc updates document frequencies with one document's tokens.
func (t *TFIDF) AddDoc(tokens []string) {
	t.docs++
	seen := map[string]bool{}
	for _, tok := range tokens {
		if !seen[tok] {
			seen[tok] = true
			t.df[tok]++
		}
	}
}

// Vector returns the TF-IDF weight map of a document.
func (t *TFIDF) Vector(tokens []string) map[string]float64 {
	tf := map[string]float64{}
	for _, tok := range tokens {
		tf[tok]++
	}
	out := make(map[string]float64, len(tf))
	n := float64(t.docs)
	if n == 0 {
		n = 1
	}
	for tok, f := range tf {
		// Smoothed IDF (the "+1" keeps corpus-wide terms from collapsing to
		// zero weight on the small per-cluster corpora this model sees).
		idf := math.Log((n+1)/(float64(t.df[tok])+1)) + 1
		out[tok] = f * idf
	}
	return out
}

// Cosine returns cosine similarity between two sparse vectors. Keys are
// accumulated in sorted order so the float result is identical across
// processes regardless of map iteration order.
func Cosine(a, b map[string]float64) float64 {
	var dot, na, nb float64
	for _, k := range sortedKeys(a) {
		v := a[k]
		na += v * v
		if w, ok := b[k]; ok {
			dot += v * w
		}
	}
	for _, k := range sortedKeys(b) {
		v := b[k]
		nb += v * v
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Normalizer merges highly similar phrases into a single canonical node
// (§3.1 "Attention Phrase Normalization"): two phrases merge when (i) their
// non-stop words are the same or synonyms and (ii) the TF-IDF similarity of
// their context-enriched representations (phrase + top clicked titles)
// exceeds Threshold.
type Normalizer struct {
	Threshold float64
	Lex       *nlp.Lexicon
	tfidf     *TFIDF

	canon []normEntry
	byKey map[string]int // sorted canonical non-stop tokens -> entry
}

type normEntry struct {
	Phrase  string
	Aliases []string
	ctx     map[string]float64
}

// NewNormalizer builds a normalizer; lex may be nil (no synonym folding).
func NewNormalizer(lex *nlp.Lexicon, threshold float64) *Normalizer {
	return &Normalizer{Threshold: threshold, Lex: lex, tfidf: NewTFIDF(), byKey: map[string]int{}}
}

// contextTokens builds the context-enriched representation: the phrase's own
// tokens plus its top clicked titles.
func contextTokens(phrase string, topTitles []string) []string {
	toks := nlp.Tokenize(phrase)
	for _, t := range topTitles {
		toks = append(toks, nlp.Tokenize(t)...)
	}
	return toks
}

// key canonicalizes non-stop tokens (synonym-folded, sorted).
func (n *Normalizer) key(phrase string) string {
	var toks []string
	for _, t := range nlp.Tokenize(phrase) {
		if nlp.IsStopWord(t) {
			continue
		}
		if n.Lex != nil {
			t = n.Lex.Canonical(t)
		}
		toks = append(toks, t)
	}
	sort.Strings(toks)
	return strings.Join(toks, " ")
}

// Observe feeds a phrase context into the TF-IDF statistics (call for all
// phrases before Add for stable IDF, or interleave for streaming behaviour).
func (n *Normalizer) Observe(phrase string, topTitles []string) {
	n.tfidf.AddDoc(contextTokens(phrase, topTitles))
}

// Add normalizes a phrase: returns the canonical phrase and whether the
// input was merged into an existing node (true) or became a new canonical
// phrase (false).
func (n *Normalizer) Add(phrase string, topTitles []string) (canonical string, merged bool) {
	ctx := n.tfidf.Vector(contextTokens(phrase, topTitles))
	k := n.key(phrase)
	if idx, ok := n.byKey[k]; ok {
		e := &n.canon[idx]
		if Cosine(ctx, e.ctx) >= n.Threshold {
			if phrase != e.Phrase {
				e.Aliases = append(e.Aliases, phrase)
			}
			return e.Phrase, true
		}
	}
	n.byKey[k] = len(n.canon)
	n.canon = append(n.canon, normEntry{Phrase: phrase, ctx: ctx})
	return phrase, false
}

// Canonicals lists the canonical phrases with their aliases.
func (n *Normalizer) Canonicals() map[string][]string {
	out := make(map[string][]string, len(n.canon))
	for _, e := range n.canon {
		out[e.Phrase] = e.Aliases
	}
	return out
}
