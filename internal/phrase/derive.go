package phrase

import (
	"sort"
	"strings"

	"giant/internal/nlp"
)

// Derived is a phrase derived from extracted phrases (a new parent node).
type Derived struct {
	Phrase   string
	Children []string // the phrases it was derived from
}

// CommonSuffixDiscovery (CSD, §3.1 "Attention Derivation") finds
// high-frequency noun-phrase suffixes among concept phrases and promotes
// them to parent concepts: "animated film" from "famous animated film",
// "award-winning animated film", etc. minFreq is the minimum number of
// distinct concepts sharing the suffix. lex may be nil (suffixes then only
// need to end in a non-stop token).
func CommonSuffixDiscovery(concepts []string, minFreq int, lex *nlp.Lexicon) []Derived {
	suffixChildren := map[string][]string{}
	for _, c := range concepts {
		toks := nlp.Tokenize(c)
		// All proper suffixes of length >= 1 (shorter than the phrase).
		for start := 1; start < len(toks); start++ {
			suf := strings.Join(toks[start:], " ")
			suffixChildren[suf] = append(suffixChildren[suf], c)
		}
	}
	var out []Derived
	for suf, children := range suffixChildren {
		if len(children) < minFreq {
			continue
		}
		if !isNounPhrase(suf, lex) {
			continue
		}
		sort.Strings(children)
		out = append(out, Derived{Phrase: suf, Children: dedupe(children)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phrase < out[j].Phrase })
	return out
}

// isNounPhrase requires the suffix to end in a noun and contain no verbs or
// punctuation.
func isNounPhrase(s string, lex *nlp.Lexicon) bool {
	toks := nlp.Tokenize(s)
	if len(toks) == 0 {
		return false
	}
	posOf := nlp.GuessPOS
	if lex != nil {
		posOf = lex.POSOf
	}
	last := posOf(toks[len(toks)-1])
	if last != nlp.PosNoun && last != nlp.PosPropn {
		return false
	}
	for _, t := range toks {
		p := posOf(t)
		if p == nlp.PosVerb || p == nlp.PosPunct {
			return false
		}
		if nlp.IsStopWord(t) {
			return false
		}
	}
	return true
}

// EventForCPD is the event view Common Pattern Discovery needs: the phrase
// tokens plus which tokens are entity mentions and what concept those
// entities belong to.
type EventForCPD struct {
	Tokens []string
	// EntitySpans maps token index -> concept phrase of the mentioned
	// entity's most fine-grained common concept ancestor.
	EntitySpans map[int]string
	SearchCount int
}

// CommonPatternDiscovery (CPD, §3.1) derives topics from events sharing a
// pattern: entity mentions are replaced by their concept ancestor, and
// patterns instantiated by >= minFreq distinct events with >= minSearch
// total search count become topic phrases ("Singer will have a concert").
func CommonPatternDiscovery(events []EventForCPD, minFreq, minSearch int) []Derived {
	type acc struct {
		children []string
		search   int
	}
	patterns := map[string]*acc{}
	for _, ev := range events {
		if len(ev.EntitySpans) == 0 {
			continue
		}
		pat := make([]string, len(ev.Tokens))
		copy(pat, ev.Tokens)
		replaced := false
		for i, concept := range ev.EntitySpans {
			if i >= 0 && i < len(pat) {
				pat[i] = concept
				replaced = true
			}
		}
		if !replaced {
			continue
		}
		// Collapse adjacent duplicate slots (multi-token entity names map
		// every token to the same concept).
		var compact []string
		for _, t := range pat {
			if len(compact) > 0 && compact[len(compact)-1] == t {
				continue
			}
			compact = append(compact, t)
		}
		key := strings.Join(compact, " ")
		a := patterns[key]
		if a == nil {
			a = &acc{}
			patterns[key] = a
		}
		a.children = append(a.children, strings.Join(ev.Tokens, " "))
		a.search += ev.SearchCount
	}
	var out []Derived
	for pat, a := range patterns {
		uniq := dedupe(a.children)
		if len(uniq) < minFreq || a.search < minSearch {
			continue
		}
		out = append(out, Derived{Phrase: pat, Children: uniq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phrase < out[j].Phrase })
	return out
}

func dedupe(xs []string) []string {
	sort.Strings(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}
