package experiments

import (
	"fmt"
	"io"

	"giant/internal/baselines"
	"giant/internal/core"
	"giant/internal/eval"
	"giant/internal/synth"
)

// MethodScore is one row of Table 5/6.
type MethodScore struct {
	Method string
	EM     float64
	F1     float64
	COV    float64
}

// gctspExtractor adapts a trained GCTSP-Net to the PhraseExtractor
// interface.
type gctspExtractor struct {
	model *core.Model
	name  string
}

func (g *gctspExtractor) Name() string { return g.name }
func (g *gctspExtractor) Extract(ex *synth.MiningExample) string {
	return g.model.ExtractFromExample(ex)
}

// trainGCTSP trains a fresh phrase model for a dataset (options may carry
// ablation switches).
func trainGCTSP(env *Env, train []synth.MiningExample, opt core.Options) *core.Model {
	if opt.Epochs == 0 {
		if env.Scale == ScaleTiny {
			opt.Epochs = 4
			opt.Layers = 3
		} else {
			opt.Epochs = 8
		}
	}
	opt.Fallback = true
	m := core.NewPhraseModel(env.World.Lexicon, opt)
	m.Train(train)
	return m
}

func scoreExtractor(e baselines.PhraseExtractor, test []synth.MiningExample) MethodScore {
	preds := make([]string, len(test))
	golds := make([]string, len(test))
	for i := range test {
		preds[i] = e.Extract(&test[i])
		golds[i] = test[i].Gold()
	}
	s := eval.EvaluatePhrases(preds, golds)
	return MethodScore{Method: e.Name(), EM: s.EM, F1: s.F1, COV: s.COV}
}

// Table5 runs every concept-mining method of the paper on the CMD test set.
func Table5(env *Env) []MethodScore {
	train, test := env.CMDTrain, env.CMDTest
	lstmEpochs := 6
	if env.Scale == ScaleTiny {
		lstmEpochs = 3
	}
	match := baselines.NewMatchExtractor(train)
	extractors := []baselines.PhraseExtractor{
		&baselines.TextRankExtractor{TR: baselines.NewTextRank()},
		&baselines.AutoPhraseExtractor{AP: baselines.NewAutoPhrase(env.World.Lexicon)},
		match,
		&baselines.AlignExtractor{},
		&baselines.MatchAlignExtractor{Patterns: match.Patterns},
		newLSTMCRF(train, baselines.ModeQuery, lstmEpochs, "Q-LSTM-CRF"),
		newLSTMCRF(train, baselines.ModeTitle, lstmEpochs, "T-LSTM-CRF"),
		&gctspExtractor{model: trainGCTSP(env, train, core.Options{}), name: "GCTSP-Net"},
	}
	out := make([]MethodScore, 0, len(extractors))
	for _, e := range extractors {
		out = append(out, scoreExtractor(e, test))
	}
	return out
}

// Table6 runs every event-mining method on the EMD test set.
func Table6(env *Env) []MethodScore {
	train, test := env.EMDTrain, env.EMDTest
	lstmEpochs := 6
	s2sEpochs := 2
	if env.Scale == ScaleTiny {
		lstmEpochs, s2sEpochs = 3, 1
	}
	extractors := []baselines.PhraseExtractor{
		&baselines.TextRankExtractor{TR: baselines.NewTextRank()},
		baselines.NewCoverRankExtractor(),
		baselines.NewTextSummaryExtractor(train, s2sEpochs, 31),
		newLSTMCRF(train, baselines.ModeEventTitle, lstmEpochs, "LSTM-CRF"),
		&gctspExtractor{model: trainGCTSP(env, train, core.Options{}), name: "GCTSP-Net"},
	}
	out := make([]MethodScore, 0, len(extractors))
	for _, e := range extractors {
		out = append(out, scoreExtractor(e, test))
	}
	return out
}

func newLSTMCRF(train []synth.MiningExample, mode baselines.LSTMCRFMode, epochs int, label string) *baselines.LSTMCRFExtractor {
	// Re-train with the configured epoch budget.
	ex := baselines.NewLSTMCRFExtractorWithEpochs(train, mode, true, label, epochs)
	return ex
}

// KeyScore is one row of Table 7.
type KeyScore struct {
	Method   string
	Macro    float64
	Micro    float64
	Weighted float64
}

// Table7 evaluates event key-element recognition: plain LSTM, LSTM-CRF and
// GCTSP-Net, scored per unique cluster token.
func Table7(env *Env) []KeyScore {
	train, test := env.EMDTrain, env.EMDTest
	epochs := 6
	opt := core.Options{}
	if env.Scale == ScaleTiny {
		epochs = 3
		opt.Epochs, opt.Layers = 4, 3
	} else {
		opt.Epochs = 8
	}
	gct := core.NewKeyElementModel(env.World.Lexicon, opt)
	gct.Train(train)

	taggers := []baselines.KeyElementTagger{
		baselines.NewLSTMKeyTaggerWithEpochs(train, false, "LSTM", epochs),
		baselines.NewLSTMKeyTaggerWithEpochs(train, true, "LSTM-CRF", epochs),
		&gctspKeyTagger{gct},
	}
	out := make([]KeyScore, 0, len(taggers))
	for _, tg := range taggers {
		var pred, gold []int
		for i := range test {
			ex := &test[i]
			classes := tg.TagKeyElements(ex)
			for _, tok := range baselines.KeyElementTokens(ex) {
				pred = append(pred, int(classes[tok]))
				gold = append(gold, int(ex.KeyLabelOf(tok)))
			}
		}
		s := eval.MultiClassF1(pred, gold, int(synth.NumKeyClasses))
		out = append(out, KeyScore{Method: tg.Name(), Macro: s.Macro, Micro: s.Micro, Weighted: s.Weighted})
	}
	return out
}

type gctspKeyTagger struct{ m *core.Model }

func (g *gctspKeyTagger) Name() string { return "GCTSP-Net" }
func (g *gctspKeyTagger) TagKeyElements(ex *synth.MiningExample) map[string]synth.KeyClass {
	return g.m.KeyElements(ex.Queries, ex.Titles)
}

// PrintMethodScores renders Table 5/6.
func PrintMethodScores(w io.Writer, title string, rows []MethodScore) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-14s %8s %8s %8s\n", "Method", "EM", "F1", "COV")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8.4f %8.4f %8.4f\n", r.Method, r.EM, r.F1, r.COV)
	}
}

// PrintKeyScores renders Table 7.
func PrintKeyScores(w io.Writer, rows []KeyScore) {
	fmt.Fprintln(w, "Table 7: Event key element recognition")
	fmt.Fprintf(w, "%-14s %10s %10s %12s\n", "Method", "F1-macro", "F1-micro", "F1-weighted")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.4f %10.4f %12.4f\n", r.Method, r.Macro, r.Micro, r.Weighted)
	}
}
