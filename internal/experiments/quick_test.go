package experiments

import (
	"os"
	"testing"
)

func TestQuickTables(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	env, err := GetEnv(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	PrintTable1(os.Stdout, Table1(env))
	PrintTable2(os.Stdout, Table2(env))
	PrintMethodScores(os.Stdout, "Table 5 (tiny)", Table5(env))
	PrintMethodScores(os.Stdout, "Table 6 (tiny)", Table6(env))
	PrintKeyScores(os.Stdout, Table7(env))
	_, s, err := Figure5(env)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout.WriteString(s)
	PrintCTRSeries(os.Stdout, "Figure 6 (tiny)", Figure6(env))
	PrintCTRSeries(os.Stdout, "Figure 7 (tiny)", Figure7(env))
	p := DocTaggingPrecision(env, 150)
	t.Logf("tagging precision: %+v", p)
}
