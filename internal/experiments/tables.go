package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/synth"
)

// Table1Row is one row of Table 1 (node inventory).
type Table1Row struct {
	Type     string
	Quantity int
	// GrowPerDay is the average number of new nodes per simulated day
	// (Table 1 reports it for concepts and events; -1 means not tracked).
	GrowPerDay float64
}

// Table1 counts attention-ontology nodes by type and growth.
func Table1(env *Env) []Table1Row {
	o := env.Sys.Ontology
	days := env.World.Config.Days
	if days < 1 {
		days = 1
	}
	rows := make([]Table1Row, 0, 5)
	for _, t := range []ontology.NodeType{
		ontology.Category, ontology.Concept, ontology.Topic,
		ontology.Event, ontology.Entity,
	} {
		r := Table1Row{Type: t.String(), Quantity: o.NodeCount(t), GrowPerDay: -1}
		if t == ontology.Concept || t == ontology.Event {
			grown := 0
			for d := 1; d < days; d++ {
				grown += o.GrowthOn(t, d)
			}
			r.GrowPerDay = float64(grown) / float64(days-1+1)
		}
		rows = append(rows, r)
	}
	return rows
}

// Table2Row is one row of Table 2 (edge inventory + accuracy).
type Table2Row struct {
	Type     string
	Quantity int
	Accuracy float64 // against ground truth (the paper used human judges)
}

// Table2 counts edges and scores them against the generative ground truth.
func Table2(env *Env) []Table2Row {
	o := env.Sys.Ontology
	rows := make([]Table2Row, 0, 3)
	for _, t := range []ontology.EdgeType{ontology.IsA, ontology.Correlate, ontology.Involve} {
		edges := o.Edges(t)
		correct := 0
		for _, e := range edges {
			if edgeIsCorrect(env, o, e) {
				correct++
			}
		}
		acc := 1.0
		if len(edges) > 0 {
			acc = float64(correct) / float64(len(edges))
		}
		rows = append(rows, Table2Row{Type: t.String(), Quantity: len(edges), Accuracy: acc})
	}
	return rows
}

// edgeIsCorrect consults the world's ground truth for one ontology edge.
func edgeIsCorrect(env *Env, o *ontology.Ontology, e ontology.Edge) bool {
	src, _ := o.Get(e.Src)
	dst, _ := o.Get(e.Dst)
	w := env.World
	switch e.Type {
	case ontology.IsA:
		switch {
		case src.Type == ontology.Category && dst.Type == ontology.Category:
			return true // mirrored from the predefined hierarchy
		case src.Type == ontology.Category && (dst.Type == ontology.Concept || dst.Type == ontology.Event):
			return categoryMatches(env, src.Phrase, dst.Phrase)
		case src.Type == ontology.Concept && dst.Type == ontology.Entity:
			ent, ok := w.EntityByName(dst.Phrase)
			if !ok {
				return false
			}
			for _, cid := range ent.Concepts {
				if conceptCovers(w.Concepts[cid].Phrase, src.Phrase) {
					return true
				}
			}
			// Derived parents (CSD suffixes) of a true concept also count.
			return suffixOfAnyConcept(w, ent, src.Phrase)
		case src.Type == ontology.Concept && dst.Type == ontology.Concept:
			return strings.HasSuffix(" "+dst.Phrase, " "+src.Phrase)
		case src.Type == ontology.Topic && dst.Type == ontology.Event:
			return true // CPD topics are built from their member events
		case src.Type == ontology.Event && dst.Type == ontology.Event:
			return containsTokens(dst.Phrase, src.Phrase)
		}
	case ontology.Involve:
		switch {
		case src.Type == ontology.Event && dst.Type == ontology.Entity:
			return eventInvolvesEntity(w, src.Phrase, dst.Phrase)
		case src.Type == ontology.Topic && dst.Type == ontology.Concept:
			return containsTokens(src.Phrase, dst.Phrase)
		}
	case ontology.Correlate:
		if src.Type == ontology.Concept && dst.Type == ontology.Concept {
			return conceptsShareEntity(env, src.Phrase, dst.Phrase)
		}
		return entitiesCoOccur(env, src.Phrase, dst.Phrase)
	}
	return false
}

// conceptsShareEntity checks the ground truth behind a concept-concept
// correlate edge: the two mined concepts map to gold concepts sharing at
// least one entity.
func conceptsShareEntity(env *Env, a, b string) bool {
	w := env.World
	entsOf := func(p string) map[int]bool {
		out := map[int]bool{}
		for _, c := range w.Concepts {
			if conceptCovers(c.Phrase, p) {
				for _, e := range c.Entities {
					out[e] = true
				}
			}
		}
		return out
	}
	ea := entsOf(a)
	for e := range entsOf(b) {
		if ea[e] {
			return true
		}
	}
	return false
}

func categoryMatches(env *Env, catName, phrase string) bool {
	// True when the mined phrase's generating concept/event lives under a
	// category with this name (any level, via the hierarchy).
	w := env.World
	for _, c := range w.Concepts {
		if conceptCovers(c.Phrase, phrase) {
			return categoryChainHas(w, c.Category, catName)
		}
	}
	for _, ev := range w.Events {
		if containsTokens(phrase, ev.Phrase) || containsTokens(ev.Phrase, phrase) {
			return categoryChainHas(w, ev.Category, catName)
		}
	}
	return false
}

func categoryChainHas(w *synth.World, cat int, name string) bool {
	for cat >= 0 && cat < len(w.Categories) {
		if w.Categories[cat].Name == name {
			return true
		}
		cat = w.Categories[cat].Parent
	}
	return false
}

// conceptCovers reports whether mined phrase m corresponds to gold concept
// phrase g (exact or g's tokens ⊆ m's non-stop tokens).
func conceptCovers(gold, mined string) bool {
	if gold == mined {
		return true
	}
	return containsTokens(mined, gold) || containsTokens(gold, mined)
}

// containsTokens reports whether every non-stop token of inner occurs in
// outer.
func containsTokens(outer, inner string) bool {
	os := map[string]bool{}
	for _, t := range nlp.Tokenize(outer) {
		os[t] = true
	}
	any := false
	for _, t := range nlp.Tokenize(inner) {
		if nlp.IsStopWord(t) {
			continue
		}
		any = true
		if !os[t] {
			return false
		}
	}
	return any
}

func suffixOfAnyConcept(w *synth.World, ent synth.Entity, phrase string) bool {
	for _, cid := range ent.Concepts {
		if strings.HasSuffix(" "+w.Concepts[cid].Phrase, " "+phrase) {
			return true
		}
	}
	return false
}

func eventInvolvesEntity(w *synth.World, eventPhrase, entityName string) bool {
	for _, ev := range w.Events {
		if !containsTokens(eventPhrase, ev.Phrase) && !containsTokens(ev.Phrase, eventPhrase) {
			continue
		}
		for _, eid := range ev.Entities {
			if w.Entities[eid].Name == entityName {
				return true
			}
		}
	}
	return false
}

func entitiesCoOccur(env *Env, a, b string) bool {
	ea, ok1 := env.World.EntityByName(a)
	eb, ok2 := env.World.EntityByName(b)
	if !ok1 || !ok2 {
		return false
	}
	for _, d := range env.Sys.Log.Docs {
		hasA, hasB := false, false
		for _, id := range d.Entities {
			if id == ea.ID {
				hasA = true
			}
			if id == eb.ID {
				hasB = true
			}
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

// ShowcaseRow is a Table 3 / Table 4 row.
type ShowcaseRow struct {
	Category string
	Parent   string // concept (T3) or topic (T4); "" when none linked
	Phrase   string
	Related  []string // entities (instances or involved)
}

// Table3 samples concept showcases with their categories and instances.
func Table3(env *Env, n int) []ShowcaseRow {
	o := env.Sys.Ontology
	var rows []ShowcaseRow
	concepts := o.Nodes(ontology.Concept)
	sort.Slice(concepts, func(i, j int) bool { return concepts[i].Phrase < concepts[j].Phrase })
	for _, c := range concepts {
		ents := entityChildren(o, c.ID)
		if len(ents) == 0 {
			continue
		}
		rows = append(rows, ShowcaseRow{
			Category: firstCategoryParent(o, c.ID),
			Phrase:   c.Phrase,
			Related:  ents,
		})
		if len(rows) >= n {
			break
		}
	}
	return rows
}

// Table4 samples event showcases with topics and involved entities.
func Table4(env *Env, n int) []ShowcaseRow {
	o := env.Sys.Ontology
	var rows []ShowcaseRow
	events := o.Nodes(ontology.Event)
	sort.Slice(events, func(i, j int) bool { return events[i].Phrase < events[j].Phrase })
	for _, ev := range events {
		var involved []string
		for _, e := range o.Children(ev.ID, ontology.Involve) {
			involved = append(involved, e.Phrase)
		}
		if len(involved) == 0 {
			continue
		}
		topic := ""
		for _, p := range o.Parents(ev.ID, ontology.IsA) {
			if p.Type == ontology.Topic {
				topic = p.Phrase
				break
			}
		}
		rows = append(rows, ShowcaseRow{
			Category: firstCategoryParent(o, ev.ID),
			Parent:   topic,
			Phrase:   ev.Phrase,
			Related:  involved,
		})
		if len(rows) >= n {
			break
		}
	}
	return rows
}

func entityChildren(o *ontology.Ontology, id ontology.NodeID) []string {
	var out []string
	for _, c := range o.Children(id, ontology.IsA) {
		if c.Type == ontology.Entity {
			out = append(out, c.Phrase)
		}
	}
	sort.Strings(out)
	if len(out) > 3 {
		out = out[:3]
	}
	return out
}

func firstCategoryParent(o *ontology.Ontology, id ontology.NodeID) string {
	for _, p := range o.Parents(id, ontology.IsA) {
		if p.Type == ontology.Category {
			return p.Phrase
		}
	}
	return ""
}

// PrintTable1 renders Table 1 in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: Nodes in the attention ontology")
	fmt.Fprintf(w, "%-10s %10s %10s\n", "Type", "Quantity", "Grow/day")
	for _, r := range rows {
		g := "-"
		if r.GrowPerDay >= 0 {
			g = fmt.Sprintf("%.1f", r.GrowPerDay)
		}
		fmt.Fprintf(w, "%-10s %10d %10s\n", r.Type, r.Quantity, g)
	}
}

// PrintTable2 renders Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: Edges in the attention ontology")
	fmt.Fprintf(w, "%-10s %10s %10s\n", "Type", "Quantity", "Accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %9.1f%%\n", r.Type, r.Quantity, 100*r.Accuracy)
	}
}

// PrintShowcase renders Table 3/4.
func PrintShowcase(w io.Writer, title string, rows []ShowcaseRow) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		parent := r.Parent
		if parent != "" {
			parent = " [" + parent + "]"
		}
		fmt.Fprintf(w, "  %-24s %s%s -> %s\n", r.Category, r.Phrase, parent, strings.Join(r.Related, ", "))
	}
}
