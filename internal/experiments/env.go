// Package experiments contains one driver per table and figure of the
// paper's evaluation section (§5), plus the throughput and ablation studies
// DESIGN.md indexes. Drivers share an Env so expensive artifacts (the built
// system, the trained models, the datasets) are constructed once.
package experiments

import (
	"sync"

	giant "giant"
	"giant/internal/synth"
)

// Scale selects experiment sizes.
type Scale int

// Scales: Tiny for unit tests, Default for the benchmark harness.
const (
	ScaleTiny Scale = iota
	ScaleDefault
)

// Env bundles the shared experimental artifacts.
type Env struct {
	Scale Scale
	Sys   *giant.System
	World *synth.World

	// Concept Mining Dataset and Event Mining Dataset with 80/10/10 splits.
	CMDTrain, CMDDev, CMDTest []synth.MiningExample
	EMDTrain, EMDDev, EMDTest []synth.MiningExample
}

var (
	envOnce  sync.Once
	envCache map[Scale]*Env
	envMu    sync.Mutex
)

// GetEnv returns the (cached) environment for a scale.
func GetEnv(s Scale) (*Env, error) {
	envMu.Lock()
	defer envMu.Unlock()
	if envCache == nil {
		envCache = map[Scale]*Env{}
	}
	if e, ok := envCache[s]; ok {
		return e, nil
	}
	e, err := buildEnv(s)
	if err != nil {
		return nil, err
	}
	envCache[s] = e
	return e, nil
}

func buildEnv(s Scale) (*Env, error) {
	var cfg giant.Config
	var cmdN, emdN int
	switch s {
	case ScaleTiny:
		cfg = giant.TinyConfig()
		cmdN, emdN = 60, 60
	default:
		cfg = giant.DefaultConfig()
		cmdN, emdN = 300, 300
	}
	sys, err := giant.Build(cfg)
	if err != nil {
		return nil, err
	}
	env := &Env{Scale: s, Sys: sys, World: sys.World}
	cmd := sys.World.ConceptExamples(cmdN, 101)
	emd := sys.World.EventExamples(emdN, 102)
	env.CMDTrain, env.CMDDev, env.CMDTest = synth.Split(cmd)
	env.EMDTrain, env.EMDDev, env.EMDTest = synth.Split(emd)
	return env, nil
}
