package experiments

import (
	"strings"

	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/synth"
	"giant/internal/tagging"
)

// TaggingPrecision holds the §5.3 document-tagging precision results.
type TaggingPrecision struct {
	ConceptPrecision float64
	ConceptTagged    int
	ConceptDocs      int
	EventPrecision   float64
	EventTagged      int
	EventDocs        int
}

// DocTaggingPrecision tags the log's documents with the built taggers and
// scores the tags against the generative ground truth (the paper used human
// evaluation on 500 docs per category).
func DocTaggingPrecision(env *Env, maxDocs int) TaggingPrecision {
	ct := env.Sys.ConceptTagger()
	et := env.Sys.EventTagger()
	var res TaggingPrecision
	var cCorrect, cTotal, eCorrect, eTotal int
	for i := range env.Sys.Log.Docs {
		if maxDocs > 0 && i >= maxDocs {
			break
		}
		d := &env.Sys.Log.Docs[i]
		doc := docView(env, d)
		if d.ConceptID >= 0 {
			res.ConceptDocs++
			tags := ct.TagConcepts(doc)
			if len(tags) > 0 {
				res.ConceptTagged++
				if conceptTagCorrect(env, d.ConceptID, tags[0].Phrase) {
					cCorrect++
				}
				cTotal++
			}
		}
		if d.EventID >= 0 {
			res.EventDocs++
			tags := et.TagEvents(doc)
			if len(tags) > 0 {
				res.EventTagged++
				if eventTagCorrect(env, d.EventID, tags[0].Phrase) {
					eCorrect++
				}
				eTotal++
			}
		}
	}
	if cTotal > 0 {
		res.ConceptPrecision = float64(cCorrect) / float64(cTotal)
	}
	if eTotal > 0 {
		res.EventPrecision = float64(eCorrect) / float64(eTotal)
	}
	return res
}

func docView(env *Env, d *synth.Doc) *tagging.Document {
	ents := make([]string, 0, len(d.Entities))
	for _, id := range d.Entities {
		ents = append(ents, env.World.Entities[id].Name)
	}
	return &tagging.Document{ID: d.ID, Title: d.Title, Content: d.Content, Entities: ents}
}

// conceptTagCorrect accepts the gold concept phrase (modulo stop-word and
// token-order noise in the mined surface form), any CSD ancestor of it, or
// any other gold concept of the same document's entities.
func conceptTagCorrect(env *Env, goldConcept int, tag string) bool {
	gold := env.World.Concepts[goldConcept].Phrase
	if tag == gold || strings.HasSuffix(" "+gold, " "+tag) ||
		containsTokens(tag, gold) || containsTokens(gold, tag) {
		return true
	}
	// Accept sibling concepts that genuinely contain the doc's entities.
	for _, eid := range env.World.Concepts[goldConcept].Entities {
		for _, cid := range env.World.Entities[eid].Concepts {
			other := env.World.Concepts[cid].Phrase
			if other == tag || containsTokens(tag, other) {
				return true
			}
		}
	}
	return false
}

func eventTagCorrect(env *Env, goldEvent int, tag string) bool {
	gold := env.World.Events[goldEvent].Phrase
	if tag == gold {
		return true
	}
	gt := nlp.Tokenize(gold)
	tt := nlp.Tokenize(tag)
	l := tagging.LCSLen(gt, tt)
	return float64(l)/float64(len(gt)) >= 0.6 || float64(l)/float64(len(tt)) >= 0.8
}

// QueryUnderstanding runs query conceptualization over concept queries and
// reports how often the conveyed concept is recovered.
func QueryUnderstanding(env *Env, maxQueries int) (hit, total int) {
	u := env.Sys.Query()
	for _, c := range env.Sys.Ontology.Nodes(ontology.Concept) {
		if maxQueries > 0 && total >= maxQueries {
			break
		}
		q := "best " + c.Phrase
		total++
		if u.Conceptualize(q) == c.Phrase {
			hit++
		}
	}
	return hit, total
}

// ThroughputStats measures processing rates (§5.1: the deployed system
// processes 350 docs/second for tagging and mines ~27k concepts/day).
type ThroughputStats struct {
	ClustersPerSec float64
	DocsPerSec     float64
}
