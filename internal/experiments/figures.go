package experiments

import (
	"fmt"
	"io"
	"strings"

	"giant/internal/rec"
	"giant/internal/storytree"
)

// Figure5 forms a story tree from the mined event with the most correlated
// peers (the "China-US trade"-style example) and returns it with a rendered
// text layout.
func Figure5(env *Env) (*storytree.Tree, string, error) {
	// Pick the mined event sharing a trigger with the most other events.
	byTrigger := map[string]int{}
	for i := range env.Sys.Mined {
		m := &env.Sys.Mined[i]
		if m.IsEvent && m.Trigger != "" {
			byTrigger[m.Trigger]++
		}
	}
	bestTrig, bestN := "", 0
	for tr, n := range byTrigger {
		if n > bestN || (n == bestN && tr < bestTrig) {
			bestTrig, bestN = tr, n
		}
	}
	var seed string
	for i := range env.Sys.Mined {
		m := &env.Sys.Mined[i]
		if m.IsEvent && m.Trigger == bestTrig {
			seed = m.Phrase
			break
		}
	}
	if seed == "" {
		return nil, "", fmt.Errorf("experiments: no event with a recognized trigger")
	}
	tree, ok := env.Sys.StoryTree(seed)
	if !ok {
		return nil, "", fmt.Errorf("experiments: story tree seed %q not found", seed)
	}
	var b strings.Builder
	tree.Render(&b)
	return tree, b.String(), nil
}

// CTRSeries is one strategy's (or tag type's) daily CTR curve.
type CTRSeries struct {
	Label string
	Stats []rec.DayStat
	Mean  float64
	Std   float64
}

// Figure6 compares recommendation with all five tag types against the
// traditional category+entity baseline.
func Figure6(env *Env) []CTRSeries {
	cfg := rec.DefaultConfig()
	if env.Scale == ScaleTiny {
		cfg.NumUsers = 60
	}
	sim := rec.NewSimulator(env.World, cfg)
	all := sim.RunStrategy([]rec.TagType{
		rec.TagCategory, rec.TagEntity, rec.TagConcept, rec.TagEvent, rec.TagTopic,
	})
	base := sim.RunStrategy([]rec.TagType{rec.TagCategory, rec.TagEntity})
	return []CTRSeries{
		{Label: "all types of tags", Stats: all, Mean: rec.MeanCTR(all), Std: rec.StdCTR(all)},
		{Label: "category + entity", Stats: base, Mean: rec.MeanCTR(base), Std: rec.StdCTR(base)},
	}
}

// Figure7 reports per-tag-type CTR curves.
func Figure7(env *Env) []CTRSeries {
	cfg := rec.DefaultConfig()
	if env.Scale == ScaleTiny {
		cfg.NumUsers = 60
	}
	sim := rec.NewSimulator(env.World, cfg)
	byType := sim.RunPerTagType()
	order := []rec.TagType{rec.TagTopic, rec.TagEvent, rec.TagEntity, rec.TagConcept, rec.TagCategory}
	out := make([]CTRSeries, 0, len(order))
	for _, t := range order {
		stats := byType[t]
		out = append(out, CTRSeries{
			Label: t.String(), Stats: stats,
			Mean: rec.MeanCTR(stats), Std: rec.StdCTR(stats),
		})
	}
	return out
}

// PrintCTRSeries renders Figure 6/7 as a table of daily CTRs plus summary.
func PrintCTRSeries(w io.Writer, title string, series []CTRSeries) {
	fmt.Fprintln(w, title)
	for _, s := range series {
		fmt.Fprintf(w, "  %-20s mean CTR %6.2f%%  (std %5.2f)\n", s.Label, s.Mean, s.Std)
	}
	if len(series) == 0 || len(series[0].Stats) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-12s", "date")
	for _, s := range series {
		fmt.Fprintf(w, " %18s", s.Label)
	}
	fmt.Fprintln(w)
	days := len(series[0].Stats)
	step := 1
	if days > 12 {
		step = days / 12
	}
	for d := 0; d < days; d += step {
		fmt.Fprintf(w, "  %-12s", series[0].Stats[d].Date)
		for _, s := range series {
			fmt.Fprintf(w, " %17.2f%%", s.Stats[d].CTR())
		}
		fmt.Fprintln(w)
	}
}
