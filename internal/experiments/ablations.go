package experiments

import (
	"giant/internal/core"
	"giant/internal/qtig"
)

// AblationResult is one ablation configuration's Table-5-style score.
type AblationResult struct {
	Name  string
	Score MethodScore
}

// AblationKeepFirstEdge compares the paper's keep-first-edge QTIG rule
// against the full multigraph (the paper reports keep-first performs
// better).
func AblationKeepFirstEdge(env *Env) []AblationResult {
	return runAblations(env, []namedOpt{
		{"keep-first-edge (paper)", core.Options{}},
		{"all-edges multigraph", core.Options{Build: qtig.BuildOptions{KeepAllEdges: true}}},
	})
}

// AblationEdgePreference drops dependency edges entirely, isolating the
// contribution of syntactic structure.
func AblationEdgePreference(env *Env) []AblationResult {
	return runAblations(env, []namedOpt{
		{"seq + dependency edges (paper)", core.Options{}},
		{"seq edges only", core.Options{Build: qtig.BuildOptions{SkipDependencies: true}}},
	})
}

// AblationATSP compares ATSP decoding against naive insertion-order
// concatenation of the positive nodes.
func AblationATSP(env *Env) []AblationResult {
	return runAblations(env, []namedOpt{
		{"ATSP decoding (paper)", core.Options{}},
		{"insertion-order decoding", core.Options{DisableATSP: true}},
	})
}

// AblationRGCNDepth sweeps the R-GCN layer count around the paper's 5.
func AblationRGCNDepth(env *Env) []AblationResult {
	var opts []namedOpt
	for _, layers := range []int{1, 3, 5} {
		opts = append(opts, namedOpt{
			name: "layers=" + itoa(layers),
			opt:  core.Options{Layers: layers},
		})
	}
	return runAblations(env, opts)
}

// AblationFeatures removes feature blocks from the node featurizer.
func AblationFeatures(env *Env) []AblationResult {
	return runAblations(env, []namedOpt{
		{"full features (paper)", core.Options{}},
		{"no POS", core.Options{Mask: core.FeatureMask{NoPOS: true}}},
		{"no NER", core.Options{Mask: core.FeatureMask{NoNER: true}}},
		{"no seq-id", core.Options{Mask: core.FeatureMask{NoSeqID: true}}},
	})
}

type namedOpt struct {
	name string
	opt  core.Options
}

func runAblations(env *Env, opts []namedOpt) []AblationResult {
	out := make([]AblationResult, 0, len(opts))
	for _, no := range opts {
		m := trainGCTSP(env, env.CMDTrain, no.opt)
		score := scoreExtractor(&gctspExtractor{model: m, name: no.name}, env.CMDTest)
		out = append(out, AblationResult{Name: no.name, Score: score})
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
