// Package delta implements incremental maintenance of the Attention
// Ontology — the operational loop the GIANT paper describes (§5: hot
// events and fresh user attentions are mined from new query-doc click
// activity daily, stale ones retire) but that a batch pipeline cannot
// provide. Instead of rebuilding the ontology from the full corpus, the
// incremental path:
//
//  1. appends a Batch of new documents and click records to the click
//     graph,
//  2. re-runs Algorithm-1 mining only over the affected cluster
//     neighbourhood (clickgraph.AffectedQueries + core.Miner.MineSeeds),
//  3. diffs the freshly mined attentions against the current snapshot into
//     an explicit Delta — nodes and edges to add, edges to re-weight,
//     nodes to touch (refresh last-seen) and nodes to retire via per-type
//     TTL decay (hot events age out fast; long-lived concepts persist),
//  4. applies the Delta to the current ontology.Snapshot, producing the
//     next immutable generation without a full rebuild.
//
// The determinism contract extends to deltas: computing and applying them
// is a pure function of (current snapshot, mined batch, policy), so
// replaying the same batches always yields the same generation; and for
// cluster neighbourhoods the batch did not touch, the applied result is
// identical to a full rebuild over the union corpus.
package delta

import (
	"errors"
	"fmt"
	"strings"

	"giant/internal/ontology"
)

// ErrInvalidBatch marks batch-validation failures — the caller sent a
// malformed or inconsistent Batch, as opposed to an internal failure of
// the delta pipeline. HTTP layers map it to a 4xx; everything else is a
// server-side 5xx.
var ErrInvalidBatch = errors.New("invalid update batch")

// Doc is one new document arriving in an update batch. Entities are
// surface names (resolved against the existing entity inventory by the
// host system).
type Doc struct {
	ID       int      `json:"id"`
	Title    string   `json:"title"`
	Content  string   `json:"content,omitempty"`
	Category int      `json:"category"`
	Entities []string `json:"entities,omitempty"`
	Day      int      `json:"day"`
}

// Click is one new (query, doc, clicks) observation.
type Click struct {
	Query  string `json:"query"`
	DocID  int    `json:"doc_id"`
	Clicks int    `json:"clicks"`
	Day    int    `json:"day"`
}

// Batch is one incremental update unit: the new documents and click
// records of (typically) one day. Day stamps the batch for TTL decay;
// when zero it is inferred from the newest click or doc day.
type Batch struct {
	Day    int     `json:"day"`
	Docs   []Doc   `json:"docs,omitempty"`
	Clicks []Click `json:"clicks,omitempty"`
}

// EffectiveDay resolves the batch's day stamp.
func (b *Batch) EffectiveDay() int {
	day := b.Day
	for i := range b.Docs {
		if b.Docs[i].Day > day {
			day = b.Docs[i].Day
		}
	}
	for i := range b.Clicks {
		if b.Clicks[i].Day > day {
			day = b.Clicks[i].Day
		}
	}
	return day
}

// Policy is the per-type maintenance policy: how long each attention type
// survives without being re-observed (in days; 0 disables retirement for
// the type) plus the linking thresholds the delta re-uses from the batch
// pipeline.
type Policy struct {
	// EventTTL retires events not re-observed for this many days — hot
	// events are short-lived by nature (paper Table 1 mines them daily).
	EventTTL int
	// ConceptTTL is the same for concepts; long-lived user interests
	// default to never retiring.
	ConceptTTL int
	// TopicTTL is the same for topics.
	TopicTTL int
	// CategoryDelta is δg for attention-category isA edges.
	CategoryDelta float64
	// SuffixMinFreq is the CSD support threshold for derived concept
	// parents.
	SuffixMinFreq int
}

// DefaultPolicy mirrors the batch pipeline's thresholds and gives events a
// two-week lifetime while concepts and topics persist indefinitely.
func DefaultPolicy() Policy {
	return Policy{EventTTL: 14, ConceptTTL: 0, TopicTTL: 0, CategoryDelta: 0.3, SuffixMinFreq: 3}
}

// ttlFor returns the policy TTL for a node type (0 = never retire).
func (p Policy) ttlFor(t ontology.NodeType) int {
	switch t {
	case ontology.Event:
		return p.EventTTL
	case ontology.Concept:
		return p.ConceptTTL
	case ontology.Topic:
		return p.TopicTTL
	default:
		return 0
	}
}

// NodeAdd describes one node to insert (in Add) or refresh (in Touch).
type NodeAdd struct {
	Type     ontology.NodeType `json:"type"`
	Phrase   string            `json:"phrase"`
	Aliases  []string          `json:"aliases,omitempty"`
	Trigger  string            `json:"trigger,omitempty"`
	Location string            `json:"location,omitempty"`
	Day      int               `json:"day,omitempty"`
}

// EdgeAdd describes one edge by its endpoint phrases, so a delta applies
// to any snapshot generation regardless of node-ID assignment.
type EdgeAdd struct {
	SrcType ontology.NodeType `json:"src_type"`
	Src     string            `json:"src"`
	DstType ontology.NodeType `json:"dst_type"`
	Dst     string            `json:"dst"`
	Type    ontology.EdgeType `json:"type"`
	Weight  float64           `json:"weight,omitempty"`
}

// Ref names an existing node by type and phrase.
type Ref struct {
	Type   ontology.NodeType `json:"type"`
	Phrase string            `json:"phrase"`
}

// Delta is an explicit, phrase-keyed diff between two ontology
// generations. Applying it to the snapshot it was computed against yields
// the next generation; all slices are in deterministic order.
type Delta struct {
	// Day is the batch day the delta was computed for (drives TTL decay
	// and last-seen refresh).
	Day int `json:"day"`
	// Seeds are the affected seed queries that were re-mined (provenance;
	// equivalence tests use them to delimit the changed region).
	Seeds []string `json:"seeds,omitempty"`
	// Add lists brand-new attention nodes.
	Add []NodeAdd `json:"add,omitempty"`
	// Touch lists existing nodes re-observed by the batch: last-seen is
	// refreshed, event attributes converge to the re-mined values and new
	// aliases merge in.
	Touch []NodeAdd `json:"touch,omitempty"`
	// Edges lists new edges (either endpoint may be an Add node).
	Edges []EdgeAdd `json:"edges,omitempty"`
	// Reweight lists existing edges whose weight changed (e.g. category
	// membership probabilities shifting as clicks accumulate).
	Reweight []EdgeAdd `json:"reweight,omitempty"`
	// Retire lists nodes dropped by TTL decay; applying removes them and
	// every incident edge.
	Retire []Ref `json:"retire,omitempty"`
}

// Empty reports whether applying the delta would change nothing
// structurally (touches alone still refresh last-seen days).
func (d *Delta) Empty() bool {
	return len(d.Add) == 0 && len(d.Edges) == 0 && len(d.Reweight) == 0 &&
		len(d.Retire) == 0 && len(d.Touch) == 0
}

// Summary renders a one-line accounting for logs and CLI output.
func (d *Delta) Summary() string {
	return fmt.Sprintf("day %d: +%d nodes, +%d edges, %d reweighted, %d touched, %d retired (%d seeds re-mined)",
		d.Day, len(d.Add), len(d.Edges), len(d.Reweight), len(d.Touch), len(d.Retire), len(d.Seeds))
}

// refKey canonicalizes a (type, phrase) pair for set membership.
func refKey(t ontology.NodeType, phrase string) string {
	return t.String() + "\x00" + strings.ToLower(phrase)
}
