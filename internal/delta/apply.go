package delta

import (
	"fmt"
	"strings"

	"giant/internal/ontology"
)

// Apply materializes the next ontology generation: retired nodes (and
// every incident edge) drop out, surviving nodes are renumbered densely,
// touched nodes refresh their last-seen day / event attributes / aliases,
// new nodes append, and new edges resolve their phrase endpoints against
// the final node set. The input snapshot is immutable and untouched; the
// result is a fresh immutable snapshot ready for atomic hot-swap.
//
// Apply is deterministic and phrase-keyed: the same delta applies to any
// generation that contains the phrases it references (edges whose
// endpoints are absent are skipped, never errors), which is what lets a
// serving tier replay deltas against whichever generation is current.
func Apply(cur *ontology.Snapshot, d *Delta) (*ontology.Snapshot, error) {
	retired := map[string]bool{}
	for _, r := range d.Retire {
		retired[refKey(r.Type, r.Phrase)] = true
	}
	touch := map[string]*NodeAdd{}
	for i := range d.Touch {
		t := &d.Touch[i]
		touch[refKey(t.Type, t.Phrase)] = t
	}

	// Survivors, densely renumbered.
	oldNodes := cur.Nodes()
	nodes := make([]ontology.Node, 0, len(oldNodes)+len(d.Add))
	remap := make([]ontology.NodeID, len(oldNodes))
	for i := range remap {
		remap[i] = -1
	}
	index := map[string]ontology.NodeID{} // refKey -> new ID
	for i := range oldNodes {
		n := oldNodes[i]
		key := refKey(n.Type, n.Phrase)
		if retired[key] {
			continue
		}
		if t, ok := touch[key]; ok {
			if d.Day > n.LastSeenDay {
				n.LastSeenDay = d.Day
			}
			if t.Trigger != "" {
				n.Trigger = t.Trigger
			}
			if t.Location != "" {
				n.Location = t.Location
			}
			if n.Type == ontology.Event && t.Day > 0 && n.Day == 0 {
				n.Day = t.Day
			}
			n.Aliases = mergeAliases(n.Phrase, n.Aliases, t.Aliases)
		}
		id := ontology.NodeID(len(nodes))
		remap[n.ID] = id
		n.ID = id
		nodes = append(nodes, n)
		index[key] = id
	}

	// New nodes append after the survivors.
	for _, a := range d.Add {
		key := refKey(a.Type, a.Phrase)
		if _, dup := index[key]; dup {
			continue // already present (idempotent re-apply)
		}
		id := ontology.NodeID(len(nodes))
		n := ontology.Node{
			ID: id, Type: a.Type, Phrase: a.Phrase,
			Aliases:      mergeAliases(a.Phrase, nil, a.Aliases),
			FirstSeenDay: a.Day, LastSeenDay: d.Day,
		}
		if a.Type == ontology.Event || a.Type == ontology.Topic {
			n.Trigger, n.Location, n.Day = a.Trigger, a.Location, a.Day
		}
		nodes = append(nodes, n)
		index[key] = id
	}

	// Surviving edges, remapped; then new edges and re-weights resolved by
	// phrase.
	type edgeKey struct {
		src, dst ontology.NodeID
		typ      ontology.EdgeType
	}
	edges := make([]ontology.Edge, 0, cur.EdgeCount()+len(d.Edges))
	at := map[edgeKey]int{}
	for _, e := range cur.Edges() {
		src, dst := remap[e.Src], remap[e.Dst]
		if src < 0 || dst < 0 {
			continue // incident to a retired node
		}
		k := edgeKey{src, dst, e.Type}
		if _, dup := at[k]; dup {
			continue
		}
		at[k] = len(edges)
		edges = append(edges, ontology.Edge{Src: src, Dst: dst, Type: e.Type, Weight: e.Weight})
	}
	resolve := func(e *EdgeAdd) (ontology.NodeID, ontology.NodeID, bool) {
		src, ok1 := index[refKey(e.SrcType, e.Src)]
		dst, ok2 := index[refKey(e.DstType, e.Dst)]
		return src, dst, ok1 && ok2 && src != dst
	}
	for i := range d.Edges {
		e := &d.Edges[i]
		src, dst, ok := resolve(e)
		if !ok {
			continue
		}
		k := edgeKey{src, dst, e.Type}
		if _, dup := at[k]; dup {
			continue
		}
		at[k] = len(edges)
		edges = append(edges, ontology.Edge{Src: src, Dst: dst, Type: e.Type, Weight: e.Weight})
	}
	for i := range d.Reweight {
		e := &d.Reweight[i]
		src, dst, ok := resolve(e)
		if !ok {
			continue
		}
		k := edgeKey{src, dst, e.Type}
		if idx, exists := at[k]; exists {
			edges[idx].Weight = e.Weight
		} else {
			at[k] = len(edges)
			edges = append(edges, ontology.Edge{Src: src, Dst: dst, Type: e.Type, Weight: e.Weight})
		}
	}

	snap, err := ontology.BuildSnapshot(nodes, edges)
	if err != nil {
		return nil, fmt.Errorf("delta: apply: %w", err)
	}
	return snap, nil
}

// mergeAliases unions alias lists, dropping duplicates (case-insensitive)
// and the canonical phrase itself, preserving first-seen order.
func mergeAliases(phrase string, existing, extra []string) []string {
	if len(extra) == 0 {
		return existing
	}
	seen := map[string]bool{strings.ToLower(phrase): true}
	out := make([]string, 0, len(existing)+len(extra))
	for _, lst := range [][]string{existing, extra} {
		for _, a := range lst {
			k := strings.ToLower(a)
			if !seen[k] {
				seen[k] = true
				out = append(out, a)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
