package delta

import (
	"runtime"
	"sort"

	"giant/internal/core"
	"giant/internal/linking"
	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/par"
	"giant/internal/phrase"
)

// Source supplies the host system's context the delta linking stages need:
// document metadata for category and concept-entity linking, the lexicon
// for CSD, and the trained concept-entity classifier. Every callback may
// be nil — the corresponding linking stage is then skipped, which degrades
// coverage but never correctness. Callbacks must be safe for concurrent
// calls: the diff passes fan out over a worker pool.
type Source struct {
	// Lexicon drives noun-phrase checks in Common Suffix Discovery.
	Lexicon *nlp.Lexicon
	// DocCategory returns the category ID of a clicked document.
	DocCategory func(docID int) (int, bool)
	// CategoryPhrase resolves a category ID to its node phrase.
	CategoryPhrase func(cat int) (string, bool)
	// DocEntities returns the entity names mentioned in a document.
	DocEntities func(docID int) []string
	// DocContent returns a document's body text (concept-entity classifier
	// context).
	DocContent func(docID int) string
	// AcceptConceptEntity is the Fig. 4 classifier decision; nil accepts
	// every candidate pair.
	AcceptConceptEntity func(concept, entity, context string) bool
	// ResolveEntity maps a recognized entity token to the full entity
	// name.
	ResolveEntity func(token string) (string, bool)
	// Parallelism bounds the worker pool the candidate-diff passes fan out
	// over; <= 0 means runtime.GOMAXPROCS(0). The computed delta is
	// byte-identical for every value: parallel passes write proposals into
	// index-ordered slots and a single sequential pass commits them.
	Parallelism int
}

// workers resolves the effective worker-pool size.
func (s *Source) workers() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// deltaBuilder accumulates one Delta, deduplicating edges per delta.
type deltaBuilder struct {
	d        *Delta
	edgeSeen map[string]bool
}

func newDeltaBuilder(day int, seeds []string) *deltaBuilder {
	return &deltaBuilder{
		d:        &Delta{Day: day, Seeds: append([]string(nil), seeds...)},
		edgeSeen: map[string]bool{},
	}
}

func (b *deltaBuilder) addEdge(e EdgeAdd) {
	k := refKey(e.SrcType, e.Src) + "\x01" + refKey(e.DstType, e.Dst) + "\x01" + e.Type.String()
	if !b.edgeSeen[k] {
		b.edgeSeen[k] = true
		b.d.Edges = append(b.d.Edges, e)
	}
}

// deltaSink receives the structural output of the shared diff phases. The
// single-delta path points every emit at one builder; the sharded path
// routes each emit to the home shard's builder.
type deltaSink interface {
	emitAdd(a NodeAdd)
	emitEdge(e EdgeAdd)
	emitRetire(r Ref)
}

// builderSink is the single-delta sink.
type builderSink struct{ b *deltaBuilder }

func (s builderSink) emitAdd(a NodeAdd)  { s.b.d.Add = append(s.b.d.Add, a) }
func (s builderSink) emitEdge(e EdgeAdd) { s.b.addEdge(e) }
func (s builderSink) emitRetire(r Ref)   { s.b.d.Retire = append(s.b.d.Retire, r) }

// classified is the outcome of the Add/Touch classification pass.
type classified struct {
	nodes   []minedNode
	newSet  map[string]bool // refKey of nodes added this delta
	touched map[string]bool // refKey of touched existing nodes
}

// classify splits mined attentions into brand-new nodes and touches of
// existing ones (matching canonical phrases first, then aliases),
// appending Add and Touch entries to the builder.
func classify(cur *ontology.Snapshot, mined []core.Mined, b *deltaBuilder) *classified {
	cl := &classified{newSet: map[string]bool{}, touched: map[string]bool{}}
	for i := range mined {
		m := &mined[i]
		typ := ontology.Concept
		if m.IsEvent {
			typ = ontology.Event
		}
		if n, ok := findNode(cur, typ, m.Phrase); ok {
			if !cl.touched[refKey(typ, n.Phrase)] {
				cl.touched[refKey(typ, n.Phrase)] = true
				aliases := append([]string(nil), m.Aliases...)
				if n.Phrase != m.Phrase {
					aliases = append(aliases, m.Phrase)
				}
				b.d.Touch = append(b.d.Touch, NodeAdd{
					Type: typ, Phrase: n.Phrase, Aliases: aliases,
					Trigger: m.Trigger, Location: m.Location, Day: m.Day,
				})
			}
			cl.nodes = append(cl.nodes, minedNode{m, typ, n.Phrase, false})
			continue
		}
		if cl.newSet[refKey(typ, m.Phrase)] {
			continue
		}
		cl.newSet[refKey(typ, m.Phrase)] = true
		b.d.Add = append(b.d.Add, NodeAdd{
			Type: typ, Phrase: m.Phrase, Aliases: append([]string(nil), m.Aliases...),
			Trigger: m.Trigger, Location: m.Location, Day: max(m.Day, 0),
		})
		cl.nodes = append(cl.nodes, minedNode{m, typ, m.Phrase, true})
	}
	return cl
}

// categoryPhase recomputes attention-category isA edges: P(g|p) = n_p^g /
// n_p over the re-mined clusters' clicked docs (the same estimate
// linking.AttentionCategoryEdges uses in the batch build, but keyed by
// (type, phrase) — a same-phrase concept and event are distinct nodes and
// must not share click-category counts). New phrases gain edges;
// re-observed phrases whose membership probability shifted are
// re-weighted. The per-phrase proposals are computed on the worker pool
// and committed in aggregation order.
func categoryPhase(cur *ontology.Snapshot, nodes []minedNode, pol Policy, src Source, b *deltaBuilder, workers int) {
	if src.DocCategory == nil || src.CategoryPhrase == nil {
		return
	}
	type catAgg struct {
		mn   minedNode
		cats map[int]int
	}
	aggs := map[string]*catAgg{}
	var order []string
	for _, mn := range nodes {
		k := refKey(mn.typ, mn.phrase)
		a := aggs[k]
		if a == nil {
			a = &catAgg{mn: mn, cats: map[int]int{}}
			aggs[k] = a
			order = append(order, k)
		}
		for _, docID := range mn.m.DocIDs {
			if c, ok := src.DocCategory(docID); ok {
				a.cats[c]++
			}
		}
	}
	type proposal struct {
		e        EdgeAdd
		reweight bool
	}
	slots := make([][]proposal, len(order))
	par.ForEachIndexed(workers, len(order), func(i int) {
		a := aggs[order[i]]
		total := 0
		catIDs := make([]int, 0, len(a.cats))
		for g, n := range a.cats {
			total += n
			catIDs = append(catIDs, g)
		}
		if total == 0 {
			return
		}
		sort.Ints(catIDs)
		for _, g := range catIDs {
			prob := float64(a.cats[g]) / float64(total)
			if prob <= pol.CategoryDelta {
				continue
			}
			catPhrase, ok := src.CategoryPhrase(g)
			if !ok {
				continue
			}
			e := EdgeAdd{
				SrcType: ontology.Category, Src: catPhrase,
				DstType: a.mn.typ, Dst: a.mn.phrase,
				Type: ontology.IsA, Weight: prob,
			}
			if a.mn.isNew {
				slots[i] = append(slots[i], proposal{e, false})
				continue
			}
			if w, exists := findEdge(cur, e); exists {
				if w != prob {
					slots[i] = append(slots[i], proposal{e, true})
				}
			} else {
				slots[i] = append(slots[i], proposal{e, false})
			}
		}
	})
	for _, ps := range slots {
		for _, p := range ps {
			if p.reweight {
				b.d.Reweight = append(b.d.Reweight, p.e)
			} else {
				b.addEdge(p.e)
			}
		}
	}
}

// inventories is the phrase inventory the derivation phase works over:
// existing attentions of the current snapshot unioned with the batch's
// new ones.
type inventories struct {
	allConcepts, allEvents     []string
	newConcepts                []string // batch's new concepts, mined order
	newConceptSet, newEventSet map[string]bool
	newSet                     map[string]bool // refKeys added this delta
}

// buildInventories derives the phrase inventories from a classification
// pass. newSet is shared (the derivation phase extends it with derived
// parents).
func buildInventories(cur *ontology.Snapshot, nodes []minedNode, newSet map[string]bool) *inventories {
	inv := &inventories{
		newConceptSet: map[string]bool{},
		newEventSet:   map[string]bool{},
		newSet:        newSet,
	}
	var newEvents []string
	for _, mn := range nodes {
		if !mn.isNew {
			continue
		}
		if mn.typ == ontology.Event {
			newEvents = append(newEvents, mn.phrase)
		} else {
			inv.newConcepts = append(inv.newConcepts, mn.phrase)
		}
	}
	inv.allConcepts = append(phrasesOfType(cur, ontology.Concept), inv.newConcepts...)
	inv.allEvents = append(phrasesOfType(cur, ontology.Event), newEvents...)
	for _, c := range inv.newConcepts {
		inv.newConceptSet[c] = true
	}
	for _, e := range newEvents {
		inv.newEventSet[e] = true
	}
	return inv
}

// derivePhase runs the inventory-wide linking: CSD-derived concept
// parents, suffix isA among concepts, containment isA among events and
// concept-topic involve edges. The three independent discovery scans fan
// out over the worker pool; commits stay sequential in the fixed stage
// order (CSD mutates the concept inventory that the suffix scan then
// reads).
func derivePhase(cur *ontology.Snapshot, inv *inventories, day int, pol Policy, src Source, sink deltaSink, workers int) {
	var (
		derived      []phrase.Derived
		containPairs []linking.PhrasePair
		involvePairs []linking.PhrasePair
	)
	topics := phrasesOfType(cur, ontology.Topic)
	_ = par.RunStages(workers,
		func() error {
			derived = phrase.CommonSuffixDiscovery(inv.allConcepts, pol.SuffixMinFreq, src.Lexicon)
			return nil
		},
		func() error { containPairs = linking.ContainmentIsAEdges(inv.allEvents); return nil },
		func() error {
			// Concept-topic involve: new concepts against the existing
			// topic inventory (topic discovery itself — CPD — stays a
			// batch-build concern; incremental batches extend membership).
			if len(topics) > 0 && len(inv.newConcepts) > 0 {
				involvePairs = linking.ConceptTopicInvolveEdges(inv.newConcepts, topics)
			}
			return nil
		},
	)

	// Attention derivation: CSD parents over the unioned concept
	// inventory. A derived parent that does not exist yet becomes an Add
	// with edges to every child; an existing parent only gains edges to
	// the batch's new children.
	for _, der := range derived {
		// Alias-aware resolution: a derived parent that only exists as an
		// alias must link through its canonical node, never duplicate it.
		parentPhrase := der.Phrase
		parentNode, parentExists := findNode(cur, ontology.Concept, der.Phrase)
		if parentExists {
			parentPhrase = parentNode.Phrase
		}
		parentKey := refKey(ontology.Concept, parentPhrase)
		if !parentExists && !inv.newSet[parentKey] {
			inv.newSet[parentKey] = true
			inv.newConceptSet[parentPhrase] = true
			inv.allConcepts = append(inv.allConcepts, parentPhrase)
			sink.emitAdd(NodeAdd{Type: ontology.Concept, Phrase: parentPhrase, Day: day})
		}
		for _, child := range der.Children {
			if parentExists && !inv.newConceptSet[child] {
				continue // pre-existing parent-child pair
			}
			sink.emitEdge(EdgeAdd{
				SrcType: ontology.Concept, Src: parentPhrase,
				DstType: ontology.Concept, Dst: child,
				Type: ontology.IsA, Weight: 1,
			})
		}
	}

	// Suffix isA among concepts and containment isA among events: only
	// pairs involving a phrase from this batch are new.
	for _, pr := range linking.SuffixIsAEdges(inv.allConcepts) {
		if inv.newConceptSet[pr.Parent] || inv.newConceptSet[pr.Child] {
			sink.emitEdge(EdgeAdd{
				SrcType: ontology.Concept, Src: pr.Parent,
				DstType: ontology.Concept, Dst: pr.Child,
				Type: ontology.IsA, Weight: 1,
			})
		}
	}
	for _, pr := range containPairs {
		if inv.newEventSet[pr.Parent] || inv.newEventSet[pr.Child] {
			sink.emitEdge(EdgeAdd{
				SrcType: ontology.Event, Src: pr.Parent,
				DstType: ontology.Event, Dst: pr.Child,
				Type: ontology.IsA, Weight: 1,
			})
		}
	}
	for _, pr := range involvePairs {
		sink.emitEdge(EdgeAdd{
			SrcType: ontology.Topic, Src: pr.Parent,
			DstType: ontology.Concept, Dst: pr.Child,
			Type: ontology.Involve, Weight: 1,
		})
	}
}

// entityPhase links the batch's new attentions to the existing entity
// inventory: concept-entity isA via the Fig. 4 classifier, event-entity
// involve via key-element resolution. Per-node candidate scans run on the
// worker pool; commits follow mined order.
func entityPhase(cur *ontology.Snapshot, nodes []minedNode, src Source, b *deltaBuilder, workers int) {
	slots := make([][]EdgeAdd, len(nodes))
	par.ForEachIndexed(workers, len(nodes), func(i int) {
		mn := nodes[i]
		if !mn.isNew {
			return
		}
		if mn.typ == ontology.Event {
			if src.ResolveEntity == nil {
				return
			}
			for _, tok := range mn.m.Entities {
				name, ok := src.ResolveEntity(tok)
				if !ok {
					continue
				}
				if _, exists := cur.Find(ontology.Entity, name); exists {
					slots[i] = append(slots[i], EdgeAdd{
						SrcType: ontology.Event, Src: mn.phrase,
						DstType: ontology.Entity, Dst: name,
						Type: ontology.Involve, Weight: 1,
					})
				}
			}
			return
		}
		if src.DocEntities == nil {
			return
		}
		seen := map[string]bool{}
		for _, docID := range mn.m.DocIDs {
			content := ""
			if src.DocContent != nil {
				content = src.DocContent(docID)
			}
			for _, name := range src.DocEntities(docID) {
				if seen[name] {
					continue
				}
				seen[name] = true
				if _, exists := cur.Find(ontology.Entity, name); !exists {
					continue
				}
				if src.AcceptConceptEntity != nil && !src.AcceptConceptEntity(mn.phrase, name, content) {
					continue
				}
				slots[i] = append(slots[i], EdgeAdd{
					SrcType: ontology.Concept, Src: mn.phrase,
					DstType: ontology.Entity, Dst: name,
					Type: ontology.IsA, Weight: 1,
				})
			}
		}
	})
	for _, es := range slots {
		for _, e := range es {
			b.addEdge(e)
		}
	}
}

// ttlPhase applies TTL retirement: attention types decay when not
// re-observed. Nodes touched or re-mined this batch are fresh by
// definition. Verdicts are computed on the worker pool and emitted in
// node-ID order.
func ttlPhase(cur *ontology.Snapshot, touched map[string]bool, day int, pol Policy, sink deltaSink, workers int) {
	nodes := cur.Nodes()
	retire := make([]bool, len(nodes))
	par.ForEachIndexed(workers, len(nodes), func(i int) {
		n := &nodes[i]
		ttl := pol.ttlFor(n.Type)
		if ttl <= 0 || touched[refKey(n.Type, n.Phrase)] {
			return
		}
		last := n.FirstSeenDay
		if n.LastSeenDay > last {
			last = n.LastSeenDay
		}
		if n.Type == ontology.Event && n.Day > last {
			last = n.Day
		}
		retire[i] = day-last > ttl
	})
	for i := range nodes {
		if retire[i] {
			sink.emitRetire(Ref{Type: nodes[i].Type, Phrase: nodes[i].Phrase})
		}
	}
}

// Compute diffs freshly mined attentions against the current snapshot into
// an explicit Delta. mined is the output of core.Miner.MineSeeds over the
// affected seeds; day stamps the batch. The result is deterministic: a
// pure function of (cur, mined, seeds, day, pol, src) — including
// src.Parallelism, which only changes how the candidate diffing is
// scheduled, never what it emits.
func Compute(cur *ontology.Snapshot, mined []core.Mined, seeds []string, day int, pol Policy, src Source) *Delta {
	b := newDeltaBuilder(day, seeds)
	w := src.workers()
	cl := classify(cur, mined, b)
	categoryPhase(cur, cl.nodes, pol, src, b, w)
	derivePhase(cur, buildInventories(cur, cl.nodes, cl.newSet), day, pol, src, builderSink{b}, w)
	entityPhase(cur, cl.nodes, src, b, w)
	ttlPhase(cur, cl.touched, day, pol, builderSink{b}, w)
	return b.d
}

// findNode resolves a (type, phrase) to the existing node, falling back to
// alias resolution.
func findNode(cur *ontology.Snapshot, t ontology.NodeType, p string) (ontology.Node, bool) {
	if n, ok := cur.Find(t, p); ok {
		return n, true
	}
	if id, ok := cur.LookupAlias(t, p); ok {
		return cur.Get(id)
	}
	return ontology.Node{}, false
}

// findEdge reports the weight of an existing edge matching e's endpoints
// and type.
func findEdge(cur *ontology.Snapshot, e EdgeAdd) (float64, bool) {
	src, ok := cur.Lookup(e.SrcType, e.Src)
	if !ok {
		return 0, false
	}
	dst, ok := cur.Lookup(e.DstType, e.Dst)
	if !ok {
		return 0, false
	}
	var w float64
	found := false
	cur.EachOut(src, func(edge *ontology.Edge, _ *ontology.Node) bool {
		if edge.Dst == dst && edge.Type == e.Type {
			w, found = edge.Weight, true
			return false
		}
		return true
	})
	return w, found
}

// phrasesOfType lists the canonical phrases of a node type in ID order.
func phrasesOfType(cur *ontology.Snapshot, t ontology.NodeType) []string {
	ids := cur.IDsOfType(t)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, cur.At(id).Phrase)
	}
	return out
}

// minedNode pairs one mined attention with its resolved ontology identity.
type minedNode struct {
	m      *core.Mined
	typ    ontology.NodeType
	phrase string // canonical node phrase (existing node's for touches)
	isNew  bool
}
