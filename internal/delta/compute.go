package delta

import (
	"sort"

	"giant/internal/core"
	"giant/internal/linking"
	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/phrase"
)

// Source supplies the host system's context the delta linking stages need:
// document metadata for category and concept-entity linking, the lexicon
// for CSD, and the trained concept-entity classifier. Every callback may
// be nil — the corresponding linking stage is then skipped, which degrades
// coverage but never correctness.
type Source struct {
	// Lexicon drives noun-phrase checks in Common Suffix Discovery.
	Lexicon *nlp.Lexicon
	// DocCategory returns the category ID of a clicked document.
	DocCategory func(docID int) (int, bool)
	// CategoryPhrase resolves a category ID to its node phrase.
	CategoryPhrase func(cat int) (string, bool)
	// DocEntities returns the entity names mentioned in a document.
	DocEntities func(docID int) []string
	// DocContent returns a document's body text (concept-entity classifier
	// context).
	DocContent func(docID int) string
	// AcceptConceptEntity is the Fig. 4 classifier decision; nil accepts
	// every candidate pair.
	AcceptConceptEntity func(concept, entity, context string) bool
	// ResolveEntity maps a recognized entity token to the full entity
	// name.
	ResolveEntity func(token string) (string, bool)
}

// Compute diffs freshly mined attentions against the current snapshot into
// an explicit Delta. mined is the output of core.Miner.MineSeeds over the
// affected seeds; day stamps the batch. The result is deterministic: a
// pure function of (cur, mined, seeds, day, pol, src).
func Compute(cur *ontology.Snapshot, mined []core.Mined, seeds []string, day int, pol Policy, src Source) *Delta {
	d := &Delta{Day: day, Seeds: append([]string(nil), seeds...)}
	edgeSeen := map[string]bool{}
	addEdge := func(e EdgeAdd) {
		k := refKey(e.SrcType, e.Src) + "\x01" + refKey(e.DstType, e.Dst) + "\x01" + e.Type.String()
		if !edgeSeen[k] {
			edgeSeen[k] = true
			d.Edges = append(d.Edges, e)
		}
	}

	// Pass 1: split mined attentions into brand-new nodes and touches of
	// existing ones (matching canonical phrases first, then aliases).
	newSet := map[string]bool{} // refKey of nodes added this delta
	nodes := make([]minedNode, 0, len(mined))
	touched := map[string]bool{} // refKey of touched existing nodes
	for i := range mined {
		m := &mined[i]
		typ := ontology.Concept
		if m.IsEvent {
			typ = ontology.Event
		}
		if n, ok := findNode(cur, typ, m.Phrase); ok {
			if !touched[refKey(typ, n.Phrase)] {
				touched[refKey(typ, n.Phrase)] = true
				aliases := append([]string(nil), m.Aliases...)
				if n.Phrase != m.Phrase {
					aliases = append(aliases, m.Phrase)
				}
				d.Touch = append(d.Touch, NodeAdd{
					Type: typ, Phrase: n.Phrase, Aliases: aliases,
					Trigger: m.Trigger, Location: m.Location, Day: m.Day,
				})
			}
			nodes = append(nodes, minedNode{m, typ, n.Phrase, false})
			continue
		}
		if newSet[refKey(typ, m.Phrase)] {
			continue
		}
		newSet[refKey(typ, m.Phrase)] = true
		d.Add = append(d.Add, NodeAdd{
			Type: typ, Phrase: m.Phrase, Aliases: append([]string(nil), m.Aliases...),
			Trigger: m.Trigger, Location: m.Location, Day: max(m.Day, 0),
		})
		nodes = append(nodes, minedNode{m, typ, m.Phrase, true})
	}

	// Attention-category isA edges: recompute P(g|p) = n_p^g / n_p over
	// the re-mined clusters' clicked docs (the same estimate
	// linking.AttentionCategoryEdges uses in the batch build, but keyed by
	// (type, phrase) — a same-phrase concept and event are distinct nodes
	// and must not share click-category counts). New phrases gain edges;
	// re-observed phrases whose membership probability shifted are
	// re-weighted.
	if src.DocCategory != nil && src.CategoryPhrase != nil {
		type catAgg struct {
			mn   minedNode
			cats map[int]int
		}
		aggs := map[string]*catAgg{}
		var order []string
		for _, mn := range nodes {
			k := refKey(mn.typ, mn.phrase)
			a := aggs[k]
			if a == nil {
				a = &catAgg{mn: mn, cats: map[int]int{}}
				aggs[k] = a
				order = append(order, k)
			}
			for _, docID := range mn.m.DocIDs {
				if c, ok := src.DocCategory(docID); ok {
					a.cats[c]++
				}
			}
		}
		for _, k := range order {
			a := aggs[k]
			total := 0
			catIDs := make([]int, 0, len(a.cats))
			for g, n := range a.cats {
				total += n
				catIDs = append(catIDs, g)
			}
			if total == 0 {
				continue
			}
			sort.Ints(catIDs)
			for _, g := range catIDs {
				prob := float64(a.cats[g]) / float64(total)
				if prob <= pol.CategoryDelta {
					continue
				}
				catPhrase, ok := src.CategoryPhrase(g)
				if !ok {
					continue
				}
				e := EdgeAdd{
					SrcType: ontology.Category, Src: catPhrase,
					DstType: a.mn.typ, Dst: a.mn.phrase,
					Type: ontology.IsA, Weight: prob,
				}
				if a.mn.isNew {
					addEdge(e)
					continue
				}
				if w, exists := findEdge(cur, e); exists {
					if w != prob {
						d.Reweight = append(d.Reweight, e)
					}
				} else {
					addEdge(e)
				}
			}
		}
	}

	// Concept phrase inventory: existing + newly mined.
	var newConcepts, newEvents []string
	for _, mn := range nodes {
		if !mn.isNew {
			continue
		}
		if mn.typ == ontology.Event {
			newEvents = append(newEvents, mn.phrase)
		} else {
			newConcepts = append(newConcepts, mn.phrase)
		}
	}
	allConcepts := phrasesOfType(cur, ontology.Concept)
	allConcepts = append(allConcepts, newConcepts...)
	allEvents := phrasesOfType(cur, ontology.Event)
	allEvents = append(allEvents, newEvents...)
	newConceptSet := map[string]bool{}
	for _, c := range newConcepts {
		newConceptSet[c] = true
	}
	newEventSet := map[string]bool{}
	for _, e := range newEvents {
		newEventSet[e] = true
	}

	// Attention derivation: CSD parents over the unioned concept
	// inventory. A derived parent that does not exist yet becomes an Add
	// with edges to every child; an existing parent only gains edges to
	// the batch's new children.
	for _, der := range phrase.CommonSuffixDiscovery(allConcepts, pol.SuffixMinFreq, src.Lexicon) {
		// Alias-aware resolution: a derived parent that only exists as an
		// alias must link through its canonical node, never duplicate it.
		parentPhrase := der.Phrase
		parentNode, parentExists := findNode(cur, ontology.Concept, der.Phrase)
		if parentExists {
			parentPhrase = parentNode.Phrase
		}
		parentKey := refKey(ontology.Concept, parentPhrase)
		if !parentExists && !newSet[parentKey] {
			newSet[parentKey] = true
			newConceptSet[parentPhrase] = true
			allConcepts = append(allConcepts, parentPhrase)
			d.Add = append(d.Add, NodeAdd{Type: ontology.Concept, Phrase: parentPhrase, Day: day})
		}
		for _, child := range der.Children {
			if parentExists && !newConceptSet[child] {
				continue // pre-existing parent-child pair
			}
			addEdge(EdgeAdd{
				SrcType: ontology.Concept, Src: parentPhrase,
				DstType: ontology.Concept, Dst: child,
				Type: ontology.IsA, Weight: 1,
			})
		}
	}

	// Suffix isA among concepts and containment isA among events: only
	// pairs involving a phrase from this batch are new.
	for _, pr := range linking.SuffixIsAEdges(allConcepts) {
		if newConceptSet[pr.Parent] || newConceptSet[pr.Child] {
			addEdge(EdgeAdd{
				SrcType: ontology.Concept, Src: pr.Parent,
				DstType: ontology.Concept, Dst: pr.Child,
				Type: ontology.IsA, Weight: 1,
			})
		}
	}
	for _, pr := range linking.ContainmentIsAEdges(allEvents) {
		if newEventSet[pr.Parent] || newEventSet[pr.Child] {
			addEdge(EdgeAdd{
				SrcType: ontology.Event, Src: pr.Parent,
				DstType: ontology.Event, Dst: pr.Child,
				Type: ontology.IsA, Weight: 1,
			})
		}
	}

	// Concept-topic involve: new concepts against the existing topic
	// inventory (topic discovery itself — CPD — stays a batch-build
	// concern; incremental batches extend membership).
	if topics := phrasesOfType(cur, ontology.Topic); len(topics) > 0 && len(newConcepts) > 0 {
		for _, pr := range linking.ConceptTopicInvolveEdges(newConcepts, topics) {
			addEdge(EdgeAdd{
				SrcType: ontology.Topic, Src: pr.Parent,
				DstType: ontology.Concept, Dst: pr.Child,
				Type: ontology.Involve, Weight: 1,
			})
		}
	}

	// Concept-entity isA (Fig. 4 classifier) and event-entity involve
	// edges for the batch's new attentions.
	for _, mn := range nodes {
		if !mn.isNew {
			continue
		}
		if mn.typ == ontology.Event {
			if src.ResolveEntity == nil {
				continue
			}
			for _, tok := range mn.m.Entities {
				name, ok := src.ResolveEntity(tok)
				if !ok {
					continue
				}
				if _, exists := cur.Find(ontology.Entity, name); exists {
					addEdge(EdgeAdd{
						SrcType: ontology.Event, Src: mn.phrase,
						DstType: ontology.Entity, Dst: name,
						Type: ontology.Involve, Weight: 1,
					})
				}
			}
			continue
		}
		if src.DocEntities == nil {
			continue
		}
		seen := map[string]bool{}
		for _, docID := range mn.m.DocIDs {
			content := ""
			if src.DocContent != nil {
				content = src.DocContent(docID)
			}
			for _, name := range src.DocEntities(docID) {
				if seen[name] {
					continue
				}
				seen[name] = true
				if _, exists := cur.Find(ontology.Entity, name); !exists {
					continue
				}
				if src.AcceptConceptEntity != nil && !src.AcceptConceptEntity(mn.phrase, name, content) {
					continue
				}
				addEdge(EdgeAdd{
					SrcType: ontology.Concept, Src: mn.phrase,
					DstType: ontology.Entity, Dst: name,
					Type: ontology.IsA, Weight: 1,
				})
			}
		}
	}

	// TTL retirement: attention types decay when not re-observed. Nodes
	// touched or re-mined this batch are fresh by definition.
	for _, n := range cur.Nodes() {
		ttl := pol.ttlFor(n.Type)
		if ttl <= 0 || touched[refKey(n.Type, n.Phrase)] {
			continue
		}
		last := n.FirstSeenDay
		if n.LastSeenDay > last {
			last = n.LastSeenDay
		}
		if n.Type == ontology.Event && n.Day > last {
			last = n.Day
		}
		if day-last > ttl {
			d.Retire = append(d.Retire, Ref{Type: n.Type, Phrase: n.Phrase})
		}
	}
	return d
}

// findNode resolves a (type, phrase) to the existing node, falling back to
// alias resolution.
func findNode(cur *ontology.Snapshot, t ontology.NodeType, p string) (ontology.Node, bool) {
	if n, ok := cur.Find(t, p); ok {
		return n, true
	}
	if id, ok := cur.LookupAlias(t, p); ok {
		return cur.Get(id)
	}
	return ontology.Node{}, false
}

// findEdge reports the weight of an existing edge matching e's endpoints
// and type.
func findEdge(cur *ontology.Snapshot, e EdgeAdd) (float64, bool) {
	src, ok := cur.Lookup(e.SrcType, e.Src)
	if !ok {
		return 0, false
	}
	dst, ok := cur.Lookup(e.DstType, e.Dst)
	if !ok {
		return 0, false
	}
	var w float64
	found := false
	cur.EachOut(src, func(edge *ontology.Edge, _ *ontology.Node) bool {
		if edge.Dst == dst && edge.Type == e.Type {
			w, found = edge.Weight, true
			return false
		}
		return true
	})
	return w, found
}

// phrasesOfType lists the canonical phrases of a node type in ID order.
func phrasesOfType(cur *ontology.Snapshot, t ontology.NodeType) []string {
	ids := cur.IDsOfType(t)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, cur.At(id).Phrase)
	}
	return out
}

// minedNode pairs one mined attention with its resolved ontology identity.
type minedNode struct {
	m      *core.Mined
	typ    ontology.NodeType
	phrase string // canonical node phrase (existing node's for touches)
	isNew  bool
}

// isEventPhrase reports whether the batch mined the phrase as an event.
func isEventPhrase(nodes []minedNode, p string) bool {
	for _, mn := range nodes {
		if mn.phrase == p {
			return mn.typ == ontology.Event
		}
	}
	return false
}
