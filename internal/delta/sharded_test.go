package delta

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"giant/internal/core"
	"giant/internal/ontology"
)

// richMined is a batch mixing touches, new concepts, new events and an
// alias-resolved touch, spread over several seeds.
func richMined() []core.Mined {
	return []core.Mined{
		{Phrase: "family sedans", Seed: "best family sedans", Day: 4, DocIDs: []int{0}},
		{Phrase: "hybrid sedans", Seed: "top hybrid sedans", Day: 4, DocIDs: []int{1}},
		{Phrase: "compact sedans", Seed: "compact sedans review", Day: 4, DocIDs: []int{0, 1}},
		{Phrase: "automaker recalls sedans", IsEvent: true, Seed: "recall news", Day: 4, Entities: []string{"honda"}},
		{Phrase: "automaker ships sedans", IsEvent: true, Seed: "shipping news", Day: 4, Trigger: "ships"},
	}
}

func richSource() Source {
	return Source{
		DocCategory:    func(docID int) (int, bool) { return 0, true },
		CategoryPhrase: func(cat int) (string, bool) { return "autos", cat == 0 },
		DocEntities: func(docID int) []string {
			if docID == 0 {
				return []string{"honda civic"}
			}
			return []string{"toyota camry"}
		},
		DocContent:    func(docID int) string { return "sedans on the road" },
		ResolveEntity: func(tok string) (string, bool) { return "honda civic", tok == "honda" },
	}
}

var richSeeds = []string{"best family sedans", "top hybrid sedans", "compact sedans review", "recall news", "shipping news"}

// TestComputeParallelDeterminism pins the satellite contract: the diff
// passes may fan out over any worker count, but the emitted delta is
// byte-identical to the serial path.
func TestComputeParallelDeterminism(t *testing.T) {
	cur := baseSnapshot(t)
	for _, workers := range []int{2, 4, 8} {
		serial, parallel := richSource(), richSource()
		serial.Parallelism = 1
		parallel.Parallelism = workers
		d1 := Compute(cur, richMined(), richSeeds, 4, testPolicy(), serial)
		dN := Compute(cur, richMined(), richSeeds, 4, testPolicy(), parallel)
		if !reflect.DeepEqual(d1, dN) {
			t.Fatalf("delta differs between Parallelism=1 and %d:\n serial:  %+v\n parallel: %+v", workers, d1, dN)
		}
	}
}

// snapshotFingerprint renders node and edge sets in a canonical,
// ID-independent order.
func snapshotFingerprint(t *testing.T, s *ontology.Snapshot) string {
	t.Helper()
	var lines []string
	for _, n := range s.Nodes() {
		aliases := append([]string(nil), n.Aliases...)
		sort.Strings(aliases)
		lines = append(lines, fmt.Sprintf("node|%s|%s|%v|%s|%s|%d|%d|%d",
			n.Type, n.Phrase, aliases, n.Trigger, n.Location, n.Day, n.FirstSeenDay, n.LastSeenDay))
	}
	for _, e := range s.Edges() {
		src, _ := s.Get(e.Src)
		dst, _ := s.Get(e.Dst)
		lines = append(lines, fmt.Sprintf("edge|%s|%s|%s|%s|%s|%.6f",
			src.Type, src.Phrase, e.Type, dst.Type, dst.Phrase, e.Weight))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// seedShards assigns the rich seeds round-robin so the batch genuinely
// splits across shards.
func seedShards(k int) func(string) (int, bool) {
	assign := map[string]int{}
	for i, s := range richSeeds {
		assign[s] = i % k
	}
	return func(s string) (int, bool) {
		sh, ok := assign[s]
		return sh, ok
	}
}

// TestComputeShardedEquivalence pins the tentpole contract: applying the
// per-shard deltas yields exactly the node/edge sets of the single-delta
// path, for several shard counts.
func TestComputeShardedEquivalence(t *testing.T) {
	cur := baseSnapshot(t)
	ref := Compute(cur, richMined(), richSeeds, 4, testPolicy(), richSource())
	refNext, err := Apply(cur, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotFingerprint(t, refNext)
	for _, k := range []int{2, 3, 4} {
		deltas := ComputeSharded(cur, richMined(), richSeeds, 4, testPolicy(), richSource(), seedShards(k), k)
		if len(deltas) != k {
			t.Fatalf("ComputeSharded returned %d deltas for k=%d", len(deltas), k)
		}
		ss, err := ontology.ShardSnapshot(cur, k)
		if err != nil {
			t.Fatal(err)
		}
		next, merged, touched, err := ApplySharded(ss, deltas)
		if err != nil {
			t.Fatalf("ApplySharded k=%d: %v", k, err)
		}
		if got := snapshotFingerprint(t, next.Union()); got != want {
			t.Fatalf("k=%d union diverges from single-delta path:\n got:\n%s\n want:\n%s", k, got, want)
		}
		if merged.Empty() {
			t.Fatalf("k=%d merged delta unexpectedly empty", k)
		}
		if len(touched) != k {
			t.Fatalf("k=%d touched flags = %v", k, touched)
		}
		// The merged per-shard projections must reproduce the union sets.
		assertShardsCoverUnion(t, next)
	}
}

// assertShardsCoverUnion checks the partition invariants: every union node
// is home in exactly one shard, and the union of stored edges (phrase
// keyed) equals the union snapshot's edges.
func assertShardsCoverUnion(t *testing.T, ss *ontology.ShardedSnapshot) {
	t.Helper()
	union := ss.Union()
	homes := map[string]int{}
	totalHome := 0
	for s := 0; s < ss.NumShards(); s++ {
		for _, n := range ss.HomeNodes(s) {
			key := n.Type.String() + "\x00" + n.Phrase
			if prev, dup := homes[key]; dup {
				t.Fatalf("node %q home in shards %d and %d", n.Phrase, prev, s)
			}
			homes[key] = s
			totalHome++
		}
	}
	if totalHome != union.NodeCount() {
		t.Fatalf("home nodes %d != union nodes %d", totalHome, union.NodeCount())
	}
	edgeKeys := func(s *ontology.Snapshot) map[string]float64 {
		out := map[string]float64{}
		for _, e := range s.Edges() {
			src, _ := s.Get(e.Src)
			dst, _ := s.Get(e.Dst)
			out[fmt.Sprintf("%s|%s|%s|%s|%s", src.Type, src.Phrase, e.Type, dst.Type, dst.Phrase)] = e.Weight
		}
		return out
	}
	want := edgeKeys(union)
	got := map[string]float64{}
	for s := 0; s < ss.NumShards(); s++ {
		for k, w := range edgeKeys(ss.Shard(s)) {
			if prev, ok := got[k]; ok && prev != w {
				t.Fatalf("edge %s stored with weights %v and %v on different shards", k, prev, w)
			}
			got[k] = w
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged shard edges != union edges:\n got %d, want %d", len(got), len(want))
	}
}

// TestApplyShardedReusesUntouchedProjections pins the publication unit: a
// delta confined to one shard advances only that shard's projection.
func TestApplyShardedReusesUntouchedProjections(t *testing.T) {
	cur := baseSnapshot(t)
	const k = 4
	ss, err := ontology.ShardSnapshot(cur, k)
	if err != nil {
		t.Fatal(err)
	}
	// A pure touch of one existing concept (TTLs off so no retirement
	// rides along): only its home shard (and no other) may republish.
	mined := []core.Mined{{Phrase: "family sedans", Seed: "best family sedans", Day: 6}}
	pol := testPolicy()
	pol.EventTTL = 0
	deltas := ComputeSharded(cur, mined, []string{"best family sedans"}, 6, pol, Source{}, func(string) (int, bool) { return 1, true }, k)
	next, _, touched, err := ApplySharded(ss, deltas)
	if err != nil {
		t.Fatal(err)
	}
	home, ok := ss.ShardOf(ontology.Concept, "family sedans")
	if !ok {
		t.Fatal("concept not routable")
	}
	for s := 0; s < k; s++ {
		if s == home {
			if !touched[s] {
				t.Fatalf("home shard %d not touched", s)
			}
			continue
		}
		if touched[s] {
			t.Fatalf("shard %d touched by a foreign delta: %v", s, touched)
		}
		if next.Shard(s) != ss.Shard(s) {
			t.Fatalf("untouched shard %d was rebuilt", s)
		}
	}
	if next.Shard(home) == ss.Shard(home) {
		t.Fatal("touched home shard kept its stale projection")
	}
}

// TestMergeDeltas checks day and slice merging.
func TestMergeDeltas(t *testing.T) {
	a := &Delta{Day: 3, Seeds: []string{"zz"}, Add: []NodeAdd{{Type: ontology.Concept, Phrase: "a"}}}
	b := &Delta{Day: 5, Seeds: []string{"aa"}, Retire: []Ref{{Type: ontology.Event, Phrase: "e"}}}
	m := MergeDeltas([]*Delta{a, b, nil})
	if m.Day != 5 || len(m.Add) != 1 || len(m.Retire) != 1 {
		t.Fatalf("merged = %+v", m)
	}
	if !sort.StringsAreSorted(m.Seeds) {
		t.Fatalf("merged seeds not sorted: %v", m.Seeds)
	}
}

// TestTouchedShardsRetireMarksNeighbors: retiring a node must also touch
// the home shards of its neighbors (their projections lose the edge and
// possibly a ghost).
func TestTouchedShardsRetireMarksNeighbors(t *testing.T) {
	cur := baseSnapshot(t)
	const k = 8
	d := &Delta{Day: 30, Retire: []Ref{{Type: ontology.Event, Phrase: "automaker recalls sedans"}}}
	touched := TouchedShards(cur, d, k)
	want := map[int]bool{
		ontology.HomeShard(ontology.Event, "automaker recalls sedans", k): true,
		// The event involves honda civic; its home shard loses the edge.
		ontology.HomeShard(ontology.Entity, "honda civic", k): true,
	}
	for s, isTouched := range touched {
		if isTouched != want[s] {
			t.Fatalf("touched[%d] = %v, want %v (touched=%v)", s, isTouched, want[s], touched)
		}
	}
}
