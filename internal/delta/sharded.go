package delta

// Shard-parallel delta computation and application. The mined batch is
// partitioned by the seed queries' click-graph shard (connected clusters
// never straddle shards, so a shard's mined attentions are exactly the
// output of re-mining that shard's seeds); the per-attention diff phases —
// Add/Touch classification, category re-weighting, entity linking — run
// per shard on the worker pool, while the inventory-wide phases (CSD
// derivation, suffix/containment isA, concept-topic involve, TTL decay)
// run once over the union inventories so no cross-shard link is ever
// missed.
//
// The per-shard Delta is the unit of parallelism and provenance (each
// carries its shard's seeds; global-phase emissions are filed under the
// home shard of the node or edge source, so a shard's delta holds the
// changes its projection will absorb — the shape a future multi-process
// deployment would ship to per-shard servers). It is NOT what drives
// republication: ApplySharded merges the deltas and derives the
// touched-shard set from the merged delta via TouchedShards, which routes
// every referenced (type, phrase) — and the neighbors of retirements —
// through the same ontology.HomeShard hash the projections use.
//
// The equivalence contract: merging the per-shard deltas and applying them
// yields exactly the node and edge sets (with weights and attributes) the
// single-delta Compute would produce — attentions resolving to the same
// canonical node are kept in one shard, the inventory-wide phases see the
// same union inputs, and Apply deduplicates the rare cross-shard repeat.
// Only node-ID assignment order may differ.

import (
	"sort"

	"giant/internal/core"
	"giant/internal/ontology"
	"giant/internal/par"
)

// routedSink routes each emitted entry to its home shard's builder.
type routedSink struct {
	builders []*deltaBuilder
	k        int
}

func (s routedSink) emitAdd(a NodeAdd) {
	b := s.builders[ontology.HomeShard(a.Type, a.Phrase, s.k)]
	b.d.Add = append(b.d.Add, a)
}

func (s routedSink) emitEdge(e EdgeAdd) {
	s.builders[ontology.HomeShard(e.SrcType, e.Src, s.k)].addEdge(e)
}

func (s routedSink) emitRetire(r Ref) {
	b := s.builders[ontology.HomeShard(r.Type, r.Phrase, s.k)]
	b.d.Retire = append(b.d.Retire, r)
}

// ComputeSharded is the k-way analogue of Compute: it returns one Delta
// per shard whose union is set-equivalent to the single Compute delta.
// shardOf maps a seed query to its click-graph shard (unknown seeds fall
// back to shard 0). k <= 1 degrades to plain Compute.
func ComputeSharded(cur *ontology.Snapshot, mined []core.Mined, seeds []string, day int, pol Policy, src Source, shardOf func(seed string) (int, bool), k int) []*Delta {
	if k <= 1 {
		return []*Delta{Compute(cur, mined, seeds, day, pol, src)}
	}
	workers := src.workers()

	// Partition seeds for provenance.
	seedsOf := make([][]string, k)
	for _, s := range seeds {
		shard := 0
		if sh, ok := shardOf(s); ok {
			shard = sh
		}
		seedsOf[shard] = append(seedsOf[shard], s)
	}

	// Partition mined attentions by their seed's shard, keeping every
	// group of attentions that resolves to the same canonical (type,
	// phrase) on a single shard: the group's classification (first
	// occurrence adds or touches, later ones ride along) and its category
	// aggregation are order-sensitive within the group, so splitting one
	// across shards would change the merged result.
	groupShard := map[string]int{}
	minedOf := make([][]core.Mined, k)
	for i := range mined {
		m := &mined[i]
		key := canonicalKey(cur, m)
		shard, ok := groupShard[key]
		if !ok {
			shard = 0
			if s, found := shardOf(m.Seed); found {
				shard = s
			}
			groupShard[key] = shard
		}
		minedOf[shard] = append(minedOf[shard], *m)
	}

	// Per-shard local phases, fanned out over the pool. Each shard runs
	// its inner phases serially (the fan-out is across shards).
	builders := make([]*deltaBuilder, k)
	classifieds := make([]*classified, k)
	localSrc := src
	localSrc.Parallelism = 1
	par.ForEachIndexed(workers, k, func(s int) {
		b := newDeltaBuilder(day, seedsOf[s])
		cl := classify(cur, minedOf[s], b)
		categoryPhase(cur, cl.nodes, pol, localSrc, b, 1)
		entityPhase(cur, cl.nodes, localSrc, b, 1)
		builders[s] = b
		classifieds[s] = cl
	})

	// Union classification state for the inventory-wide phases, with the
	// batch's new phrase lists reconstructed in global mined order so the
	// discovery scans see the same inputs the single-delta path would.
	unionNew := map[string]bool{}
	unionTouched := map[string]bool{}
	for _, cl := range classifieds {
		for key := range cl.newSet {
			unionNew[key] = true
		}
		for key := range cl.touched {
			unionTouched[key] = true
		}
	}
	inv := &inventories{
		newConceptSet: map[string]bool{},
		newEventSet:   map[string]bool{},
		newSet:        unionNew,
	}
	var newEvents []string
	seen := map[string]bool{}
	for i := range mined {
		m := &mined[i]
		typ := ontology.Concept
		if m.IsEvent {
			typ = ontology.Event
		}
		key := refKey(typ, m.Phrase)
		if !unionNew[key] || seen[key] {
			continue
		}
		seen[key] = true
		if m.IsEvent {
			newEvents = append(newEvents, m.Phrase)
			inv.newEventSet[m.Phrase] = true
		} else {
			inv.newConcepts = append(inv.newConcepts, m.Phrase)
			inv.newConceptSet[m.Phrase] = true
		}
	}
	inv.allConcepts = append(phrasesOfType(cur, ontology.Concept), inv.newConcepts...)
	inv.allEvents = append(phrasesOfType(cur, ontology.Event), newEvents...)

	sink := routedSink{builders: builders, k: k}
	derivePhase(cur, inv, day, pol, src, sink, workers)
	ttlPhase(cur, unionTouched, day, pol, sink, workers)

	out := make([]*Delta, k)
	for s := range builders {
		out[s] = builders[s].d
	}
	return out
}

// canonicalKey resolves a mined attention to the refKey of the node it
// will add or touch (the existing canonical node's phrase when the mined
// phrase or one of its aliases is already known).
func canonicalKey(cur *ontology.Snapshot, m *core.Mined) string {
	typ := ontology.Concept
	if m.IsEvent {
		typ = ontology.Event
	}
	if n, ok := findNode(cur, typ, m.Phrase); ok {
		return refKey(typ, n.Phrase)
	}
	return refKey(typ, m.Phrase)
}

// MergeDeltas concatenates per-shard deltas (in shard order) into the
// single delta their union represents: the day is the maximum, seeds are
// re-sorted and entry slices append in shard order. Apply deduplicates
// nodes and edges, so applying the merged delta equals applying the
// shards' deltas jointly.
func MergeDeltas(deltas []*Delta) *Delta {
	if len(deltas) == 1 {
		return deltas[0]
	}
	out := &Delta{}
	for _, d := range deltas {
		if d == nil {
			continue
		}
		if d.Day > out.Day {
			out.Day = d.Day
		}
		out.Seeds = append(out.Seeds, d.Seeds...)
		out.Add = append(out.Add, d.Add...)
		out.Touch = append(out.Touch, d.Touch...)
		out.Edges = append(out.Edges, d.Edges...)
		out.Reweight = append(out.Reweight, d.Reweight...)
		out.Retire = append(out.Retire, d.Retire...)
	}
	sort.Strings(out.Seeds)
	return out
}

// TouchedShards computes which shards' projections a merged delta can
// change: the home shard of every added, touched, retired, re-weighted or
// edge-endpoint node — plus, for retirements, the home shards of the
// retired node's neighbors in the pre-apply union (their projections lose
// the incident edge and possibly a ghost copy).
func TouchedShards(cur *ontology.Snapshot, d *Delta, k int) []bool {
	touched := make([]bool, k)
	mark := func(t ontology.NodeType, phrase string) {
		touched[ontology.HomeShard(t, phrase, k)] = true
	}
	for i := range d.Add {
		mark(d.Add[i].Type, d.Add[i].Phrase)
	}
	for i := range d.Touch {
		mark(d.Touch[i].Type, d.Touch[i].Phrase)
	}
	for i := range d.Edges {
		mark(d.Edges[i].SrcType, d.Edges[i].Src)
		mark(d.Edges[i].DstType, d.Edges[i].Dst)
	}
	for i := range d.Reweight {
		mark(d.Reweight[i].SrcType, d.Reweight[i].Src)
		mark(d.Reweight[i].DstType, d.Reweight[i].Dst)
	}
	for i := range d.Retire {
		r := &d.Retire[i]
		mark(r.Type, r.Phrase)
		id, ok := cur.Lookup(r.Type, r.Phrase)
		if !ok {
			continue
		}
		cur.EachOut(id, func(_ *ontology.Edge, dst *ontology.Node) bool {
			mark(dst.Type, dst.Phrase)
			return true
		})
		cur.EachIn(id, func(_ *ontology.Edge, src *ontology.Node) bool {
			mark(src.Type, src.Phrase)
			return true
		})
	}
	return touched
}

// ApplySharded applies per-shard deltas to a sharded snapshot: the merged
// delta advances the union exactly as Apply would, and only the touched
// shards' projections are re-derived — untouched shards keep their current
// projection (and, in the serving tier, their generation). It returns the
// next sharded snapshot, the merged delta and the touched-shard flags.
func ApplySharded(cur *ontology.ShardedSnapshot, deltas []*Delta) (*ontology.ShardedSnapshot, *Delta, []bool, error) {
	merged := MergeDeltas(deltas)
	touched := TouchedShards(cur.Union(), merged, cur.NumShards())
	nextUnion, err := Apply(cur.Union(), merged)
	if err != nil {
		return nil, nil, nil, err
	}
	next, err := cur.Advance(nextUnion, touched)
	if err != nil {
		return nil, nil, nil, err
	}
	return next, merged, touched, nil
}
