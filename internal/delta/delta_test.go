package delta

import (
	"bytes"
	"testing"

	"giant/internal/core"
	"giant/internal/ontology"
)

// baseSnapshot builds a small ontology: one category, two entities, one
// concept linked to both, and one old event.
func baseSnapshot(t *testing.T) *ontology.Snapshot {
	t.Helper()
	o := ontology.New()
	cat := o.AddNode(ontology.Category, "autos")
	con := o.AddNodeAt(ontology.Concept, "family sedans", 1)
	e1 := o.AddNode(ontology.Entity, "honda civic")
	e2 := o.AddNode(ontology.Entity, "toyota camry")
	evt := o.AddNodeAt(ontology.Event, "automaker recalls sedans", 1)
	o.SetEventAttrs(evt, "recalls", "", 1)
	for _, e := range []ontology.Edge{
		{Src: cat, Dst: con, Type: ontology.IsA, Weight: 0.8},
		{Src: con, Dst: e1, Type: ontology.IsA, Weight: 1},
		{Src: con, Dst: e2, Type: ontology.IsA, Weight: 1},
		{Src: evt, Dst: e1, Type: ontology.Involve, Weight: 1},
	} {
		if err := o.AddEdge(e.Src, e.Dst, e.Type, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	return o.Snapshot()
}

func testPolicy() Policy {
	p := DefaultPolicy()
	p.EventTTL = 3
	return p
}

func TestComputeAddsAndTouches(t *testing.T) {
	cur := baseSnapshot(t)
	mined := []core.Mined{
		{Phrase: "family sedans", Seed: "best family sedans", Day: 4, DocIDs: []int{0}},
		{Phrase: "hybrid sedans", Seed: "top hybrid sedans", Day: 4, DocIDs: []int{1}},
	}
	src := Source{
		DocCategory:    func(docID int) (int, bool) { return 0, true },
		CategoryPhrase: func(cat int) (string, bool) { return "autos", cat == 0 },
	}
	d := Compute(cur, mined, []string{"best family sedans", "top hybrid sedans"}, 4, testPolicy(), src)
	if len(d.Add) != 1 || d.Add[0].Phrase != "hybrid sedans" || d.Add[0].Type != ontology.Concept {
		t.Fatalf("Add = %+v, want the new concept only", d.Add)
	}
	if len(d.Touch) != 1 || d.Touch[0].Phrase != "family sedans" {
		t.Fatalf("Touch = %+v, want the re-observed concept", d.Touch)
	}
	// Category edge for the new concept: every clicked doc in category 0.
	foundCat := false
	for _, e := range d.Edges {
		if e.SrcType == ontology.Category && e.Dst == "hybrid sedans" {
			foundCat = true
			if e.Weight != 1 {
				t.Fatalf("category edge weight = %v, want 1", e.Weight)
			}
		}
	}
	if !foundCat {
		t.Fatalf("no category edge for the new concept in %+v", d.Edges)
	}
	// The re-observed concept's category probability moved from 0.8 to 1.
	if len(d.Reweight) != 1 || d.Reweight[0].Dst != "family sedans" || d.Reweight[0].Weight != 1 {
		t.Fatalf("Reweight = %+v, want the family-sedans category edge at 1", d.Reweight)
	}
	if len(d.Retire) != 0 {
		t.Fatalf("nothing should retire on day 4 with TTL 3 and the event seen day 1: %+v", d.Retire)
	}
}

func TestComputeRetiresExpiredEvents(t *testing.T) {
	cur := baseSnapshot(t)
	d := Compute(cur, nil, nil, 30, testPolicy(), Source{})
	if len(d.Retire) != 1 || d.Retire[0].Phrase != "automaker recalls sedans" || d.Retire[0].Type != ontology.Event {
		t.Fatalf("Retire = %+v, want the stale event only", d.Retire)
	}
	// Concepts have no TTL by default.
	for _, r := range d.Retire {
		if r.Type == ontology.Concept {
			t.Fatalf("concept retired despite ConceptTTL=0: %+v", r)
		}
	}
	// A re-observed event survives the same horizon.
	mined := []core.Mined{{Phrase: "automaker recalls sedans", IsEvent: true, Seed: "recall news", Day: 30}}
	d2 := Compute(cur, mined, []string{"recall news"}, 30, testPolicy(), Source{})
	if len(d2.Retire) != 0 {
		t.Fatalf("touched event must not retire: %+v", d2.Retire)
	}
	if len(d2.Touch) != 1 {
		t.Fatalf("Touch = %+v", d2.Touch)
	}
}

func TestApplyRetireRenumbersAndDropsEdges(t *testing.T) {
	cur := baseSnapshot(t)
	d := &Delta{Day: 30, Retire: []Ref{{Type: ontology.Event, Phrase: "automaker recalls sedans"}}}
	next, err := Apply(cur, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if next.NodeCount() != cur.NodeCount()-1 {
		t.Fatalf("node count %d, want %d", next.NodeCount(), cur.NodeCount()-1)
	}
	if _, ok := next.Find(ontology.Event, "automaker recalls sedans"); ok {
		t.Fatal("retired event still resolvable")
	}
	// The involve edge into honda civic went with it; concept edges stay.
	if got := next.EdgeCount(ontology.Involve); got != 0 {
		t.Fatalf("involve edges after retirement = %d, want 0", got)
	}
	if got := next.EdgeCount(ontology.IsA); got != 3 {
		t.Fatalf("isA edges after retirement = %d, want 3", got)
	}
	// Renumbered IDs stay dense and self-consistent.
	for _, n := range next.Nodes() {
		if got, ok := next.Get(n.ID); !ok || got.Phrase != n.Phrase {
			t.Fatalf("node %q broke after renumbering", n.Phrase)
		}
	}
}

func TestApplyAddTouchReweight(t *testing.T) {
	cur := baseSnapshot(t)
	d := &Delta{
		Day: 9,
		Add: []NodeAdd{{Type: ontology.Concept, Phrase: "hybrid sedans", Day: 9, Aliases: []string{"hybrids"}}},
		Touch: []NodeAdd{{Type: ontology.Event, Phrase: "automaker recalls sedans",
			Trigger: "recalled", Location: "detroit", Aliases: []string{"sedan recall"}}},
		Edges: []EdgeAdd{
			{SrcType: ontology.Concept, Src: "hybrid sedans", DstType: ontology.Entity, Dst: "toyota camry", Type: ontology.IsA, Weight: 1},
			{SrcType: ontology.Concept, Src: "hybrid sedans", DstType: ontology.Entity, Dst: "no such entity", Type: ontology.IsA, Weight: 1},
		},
		Reweight: []EdgeAdd{{SrcType: ontology.Category, Src: "autos", DstType: ontology.Concept, Dst: "family sedans", Type: ontology.IsA, Weight: 0.95}},
	}
	next, err := Apply(cur, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	n, ok := next.Find(ontology.Concept, "hybrid sedans")
	if !ok || n.FirstSeenDay != 9 || n.LastSeenDay != 9 {
		t.Fatalf("added node = %+v", n)
	}
	if id, ok := next.LookupAlias(ontology.Concept, "hybrids"); !ok || id != n.ID {
		t.Fatal("alias of the added node not indexed")
	}
	evt, _ := next.Find(ontology.Event, "automaker recalls sedans")
	if evt.Trigger != "recalled" || evt.Location != "detroit" || evt.LastSeenDay != 9 {
		t.Fatalf("touched event did not converge: %+v", evt)
	}
	if id, ok := next.LookupAlias(ontology.Event, "sedan recall"); !ok || id != evt.ID {
		t.Fatal("touched event's merged alias not indexed")
	}
	// New edge landed; the edge with a dangling endpoint was skipped.
	if got := len(next.Children(n.ID, ontology.IsA)); got != 1 {
		t.Fatalf("new concept has %d isA children, want 1", got)
	}
	// Reweight updated in place.
	cat, _ := next.Find(ontology.Category, "autos")
	found := false
	next.EachOut(cat.ID, func(e *ontology.Edge, dst *ontology.Node) bool {
		if dst.Phrase == "family sedans" {
			found = true
			if e.Weight != 0.95 {
				t.Fatalf("reweighted edge = %v, want 0.95", e.Weight)
			}
		}
		return true
	})
	if !found {
		t.Fatal("reweighted edge vanished")
	}
}

// TestApplyDeterministic re-applies the same delta to the same snapshot
// and expects byte-identical serialization — the contract that makes
// replay and rollback sound.
func TestApplyDeterministic(t *testing.T) {
	cur := baseSnapshot(t)
	d := &Delta{
		Day:    9,
		Add:    []NodeAdd{{Type: ontology.Concept, Phrase: "hybrid sedans", Day: 9}},
		Edges:  []EdgeAdd{{SrcType: ontology.Concept, Src: "hybrid sedans", DstType: ontology.Entity, Dst: "toyota camry", Type: ontology.IsA, Weight: 1}},
		Retire: []Ref{{Type: ontology.Event, Phrase: "automaker recalls sedans"}},
	}
	a, err := Apply(cur, d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Apply(cur, d)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same delta on same snapshot produced different generations")
	}
}

func TestDeltaSummaryAndEmpty(t *testing.T) {
	d := &Delta{}
	if !d.Empty() {
		t.Fatal("zero delta should be empty")
	}
	d.Add = append(d.Add, NodeAdd{Type: ontology.Concept, Phrase: "x"})
	if d.Empty() {
		t.Fatal("delta with adds is not empty")
	}
	if d.Summary() == "" {
		t.Fatal("summary must render")
	}
}
