// Package rgcn implements Relational Graph Convolutional Networks
// (Schlichtkrull et al.) with basis decomposition, as used by GCTSP-Net for
// node classification over Query-Title Interaction Graphs (paper Eq. 3–6).
// Forward and backward passes are hand-written; training is full-batch per
// graph with Adam.
package rgcn

import (
	"math/rand"

	"giant/internal/nn"
)

// Edge is a directed typed edge: messages flow Src → Dst under relation Rel.
type Edge struct {
	Src, Dst, Rel int
}

// GraphData is one input graph: node features plus typed edges.
type GraphData struct {
	N     int
	X     *nn.Mat // N × inDim node features
	Edges []Edge
	// Labels[v] is the gold class of node v, or -1 to exclude it from loss.
	Labels []int

	byRel   [][]Edge
	normDst [][]float64 // per relation: 1/|N_r(dst)| for each node
	prepped bool
	numRel  int
}

// prep groups edges by relation and precomputes c_vw = |N_r(v)| normalizers.
func (g *GraphData) prep(numRel int) {
	if g.prepped && g.numRel == numRel {
		return
	}
	g.byRel = make([][]Edge, numRel)
	g.normDst = make([][]float64, numRel)
	for _, e := range g.Edges {
		if e.Rel < 0 || e.Rel >= numRel {
			continue
		}
		g.byRel[e.Rel] = append(g.byRel[e.Rel], e)
	}
	for r := range g.byRel {
		cnt := make([]float64, g.N)
		for _, e := range g.byRel[r] {
			cnt[e.Dst]++
		}
		inv := make([]float64, g.N)
		for v, c := range cnt {
			if c > 0 {
				inv[v] = 1 / c
			}
		}
		g.normDst[r] = inv
	}
	g.prepped = true
	g.numRel = numRel
}

// Config describes the model.
type Config struct {
	NumRel  int
	In      int
	Hidden  int
	Layers  int // number of R-GCN layers (paper: 5)
	Bases   int // basis count B (paper: 5)
	Classes int
	Seed    int64
}

// Model is a multi-layer R-GCN followed by a linear per-node classifier.
type Model struct {
	Cfg    Config
	layers []*layer
	out    *nn.Dense
	params []*nn.Param
}

// layer is one R-GCN layer with basis decomposition:
// h' = ReLU( H·W0 + Σ_r A_r·H·W_r ), W_r = Σ_b a_rb V_b.
type layer struct {
	in, out, numRel, bases int
	W0                     *nn.Param   // in×out self-connection
	V                      []*nn.Param // B basis matrices in×out
	A                      *nn.Param   // numRel×B coefficients
	Bias                   *nn.Param   // 1×out

	// forward caches
	h    *nn.Mat   // layer input
	aggs []*nn.Mat // per relation: A_r·H
	pre  *nn.Mat   // pre-activation
	wr   []*nn.Mat // per relation: materialized W_r

	// inferWr is the frozen materialization of W_r for inference, rebuilt by
	// Train once the weights settle so concurrent Infer calls read it
	// without re-deriving the basis decomposition per call.
	inferWr []*nn.Mat
}

func newLayer(name string, in, out, numRel, bases int, rng *rand.Rand) *layer {
	l := &layer{
		in: in, out: out, numRel: numRel, bases: bases,
		W0:   nn.NewParam(name+".W0", in, out, rng),
		A:    nn.NewParam(name+".a", numRel, bases, rng),
		Bias: nn.NewParam(name+".bias", 1, out, nil),
	}
	for b := 0; b < bases; b++ {
		l.V = append(l.V, nn.NewParam(name+".V", in, out, rng))
	}
	return l
}

func (l *layer) parameters() []*nn.Param {
	ps := []*nn.Param{l.W0, l.A, l.Bias}
	return append(ps, l.V...)
}

// relWeights materializes the per-relation weight matrices W_r from the
// basis decomposition into a fresh slice, leaving the layer untouched.
func (l *layer) relWeights() []*nn.Mat {
	wr := make([]*nn.Mat, l.numRel)
	for r := 0; r < l.numRel; r++ {
		w := nn.NewMat(l.in, l.out)
		for b := 0; b < l.bases; b++ {
			coef := l.A.W.At(r, b)
			if coef == 0 {
				continue
			}
			for i, v := range l.V[b].W.D {
				w.D[i] += coef * v
			}
		}
		wr[r] = w
	}
	return wr
}

// aggregate computes A_r·H for one relation, or nil when the relation has no
// edges.
func (l *layer) aggregate(g *GraphData, h *nn.Mat, r int) *nn.Mat {
	edges := g.byRel[r]
	if len(edges) == 0 {
		return nil
	}
	agg := nn.NewMat(g.N, l.in)
	norm := g.normDst[r]
	for _, e := range edges {
		c := norm[e.Dst]
		src := h.Row(e.Src)
		dst := agg.Row(e.Dst)
		for j := range dst {
			dst[j] += c * src[j]
		}
	}
	return agg
}

// preActivation computes xW0 + b + Σ_r (A_r·H)W_r. aggs and wr are indexed by
// relation; aggs entries may be nil for edgeless relations.
func (l *layer) preActivation(h *nn.Mat, aggs, wr []*nn.Mat) *nn.Mat {
	pre := nn.MatMul(h, l.W0.W)
	for i := 0; i < pre.R; i++ {
		row := pre.Row(i)
		for j := range row {
			row[j] += l.Bias.W.D[j]
		}
	}
	for r, agg := range aggs {
		if agg != nil {
			pre.AddMat(nn.MatMul(agg, wr[r]))
		}
	}
	return pre
}

// forward is the training-time pass: it caches activations on the layer for
// the subsequent backward call, so it must not run concurrently.
func (l *layer) forward(g *GraphData, h *nn.Mat) *nn.Mat {
	l.h = h
	l.wr = l.relWeights()
	l.aggs = make([]*nn.Mat, l.numRel)
	for r := 0; r < l.numRel; r++ {
		l.aggs[r] = l.aggregate(g, h, r)
	}
	l.pre = l.preActivation(h, l.aggs, l.wr)
	return nn.ReLU(l.pre)
}

// inferForward computes the same pass as forward but writes nothing to the
// layer, so a trained layer can serve many goroutines at once. It prefers
// the weight matrices frozen by the last Train and only re-materializes them
// for a model that was never trained.
func (l *layer) inferForward(g *GraphData, h *nn.Mat) *nn.Mat {
	wr := l.inferWr
	if wr == nil {
		wr = l.relWeights()
	}
	aggs := make([]*nn.Mat, l.numRel)
	for r := 0; r < l.numRel; r++ {
		aggs[r] = l.aggregate(g, h, r)
	}
	return nn.ReLU(l.preActivation(h, aggs, wr))
}

func (l *layer) backward(g *GraphData, dOut *nn.Mat) *nn.Mat {
	dPre := nn.ReLUBackward(dOut, l.pre)
	// Bias.
	for i := 0; i < dPre.R; i++ {
		row := dPre.Row(i)
		for j := range row {
			l.Bias.G.D[j] += row[j]
		}
	}
	// Self connection.
	l.W0.G.AddMat(nn.MatMulTA(l.h, dPre))
	dH := nn.MatMulTB(dPre, l.W0.W)
	// Relations.
	for r := 0; r < l.numRel; r++ {
		agg := l.aggs[r]
		if agg == nil {
			continue
		}
		dWr := nn.MatMulTA(agg, dPre)
		// Basis decomposition grads: da_rb = <V_b, dWr>, dV_b += a_rb·dWr.
		for b := 0; b < l.bases; b++ {
			dot := 0.0
			vb := l.V[b]
			for i, v := range vb.W.D {
				dot += v * dWr.D[i]
			}
			l.A.G.Add(r, b, dot)
			coef := l.A.W.At(r, b)
			if coef != 0 {
				for i := range vb.G.D {
					vb.G.D[i] += coef * dWr.D[i]
				}
			}
		}
		// dAgg = dPre · W_rᵀ, then scatter back through A_r.
		dAgg := nn.MatMulTB(dPre, l.wr[r])
		norm := g.normDst[r]
		for _, e := range g.byRel[r] {
			c := norm[e.Dst]
			srcRow := dH.Row(e.Src)
			dRow := dAgg.Row(e.Dst)
			for j := range srcRow {
				srcRow[j] += c * dRow[j]
			}
		}
	}
	return dH
}

// New builds an R-GCN model.
func New(cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg}
	in := cfg.In
	for i := 0; i < cfg.Layers; i++ {
		l := newLayer("rgcn", in, cfg.Hidden, cfg.NumRel, cfg.Bases, rng)
		m.layers = append(m.layers, l)
		m.params = append(m.params, l.parameters()...)
		in = cfg.Hidden
	}
	m.out = nn.NewDense("rgcn.out", in, cfg.Classes, rng)
	m.params = append(m.params, m.out.Params()...)
	return m
}

// Params lists all trainable parameters.
func (m *Model) Params() []*nn.Param { return m.params }

// Forward computes per-node class logits (N × Classes).
func (m *Model) Forward(g *GraphData) *nn.Mat {
	g.prep(m.Cfg.NumRel)
	h := g.X
	for _, l := range m.layers {
		h = l.forward(g, h)
	}
	return m.out.Forward(h)
}

// Infer computes per-node class logits like Forward, but without writing the
// forward caches the backward pass needs — a trained model can therefore
// serve concurrent Infer calls from many goroutines (the parallel miner
// depends on this). The GraphData itself must still be call-private: prep
// mutates it.
func (m *Model) Infer(g *GraphData) *nn.Mat {
	g.prep(m.Cfg.NumRel)
	h := g.X
	for _, l := range m.layers {
		h = l.inferForward(g, h)
	}
	return m.out.Infer(h)
}

// Backward back-propagates dLogits and returns dX (unused by callers but
// handy for feature-gradient ablations).
func (m *Model) Backward(g *GraphData, dLogits *nn.Mat) *nn.Mat {
	d := m.out.Backward(dLogits)
	for i := len(m.layers) - 1; i >= 0; i-- {
		d = m.layers[i].backward(g, d)
	}
	return d
}

// TrainOptions configure Train.
type TrainOptions struct {
	Epochs      int
	LR          float64
	ClassWeight []float64 // optional per-class loss weight
	Progress    func(epoch int, loss float64)
}

// Train fits the model on the labelled graphs (one Adam step per graph).
func (m *Model) Train(graphs []*GraphData, opt TrainOptions) {
	adam := nn.NewAdam(opt.LR, m.params)
	for ep := 0; ep < opt.Epochs; ep++ {
		total := 0.0
		for _, g := range graphs {
			logits := m.Forward(g)
			var loss float64
			var dLogits *nn.Mat
			if opt.ClassWeight != nil {
				loss, dLogits = nn.WeightedSoftmaxCE(logits, g.Labels, opt.ClassWeight)
			} else {
				loss, dLogits = nn.SoftmaxCE(logits, g.Labels)
			}
			m.Backward(g, dLogits)
			adam.Step()
			total += loss
		}
		if opt.Progress != nil {
			opt.Progress(ep, total/float64(len(graphs)))
		}
	}
	// Freeze the materialized W_r for the inference path: weights no longer
	// move, so Infer can reuse them instead of re-deriving the basis
	// decomposition on every call. (Another Train run re-freezes.)
	for _, l := range m.layers {
		l.inferWr = l.relWeights()
	}
}

// Predict returns the argmax class per node. Safe for concurrent use on a
// trained model (each call must own its GraphData).
func (m *Model) Predict(g *GraphData) []int {
	logits := m.Infer(g)
	out := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		row := logits.Row(v)
		best, arg := row[0], 0
		for j, s := range row {
			if s > best {
				best, arg = s, j
			}
		}
		out[v] = arg
	}
	return out
}

// PredictProbs returns per-node softmax probabilities. Safe for concurrent
// use on a trained model (each call must own its GraphData).
func (m *Model) PredictProbs(g *GraphData) *nn.Mat {
	logits := m.Infer(g)
	nn.SoftmaxRow(logits)
	return logits
}
