package rgcn

import (
	"math"
	"math/rand"
	"testing"

	"giant/internal/nn"
)

// chainGraph builds a simple typed graph: labels depend on whether a node
// has an incoming relation-0 edge — learnable only through message passing.
func chainGraph(rng *rand.Rand, n int) *GraphData {
	g := &GraphData{N: n, X: nn.NewMat(n, 4), Labels: make([]int, n)}
	for v := 0; v < n; v++ {
		for j := 0; j < 4; j++ {
			g.X.Set(v, j, rng.Float64())
		}
	}
	for v := 0; v+1 < n; v++ {
		rel := v % 2
		g.Edges = append(g.Edges, Edge{Src: v, Dst: v + 1, Rel: rel})
		if rel == 0 {
			g.Labels[v+1] = 1
		}
	}
	return g
}

func modelCfg() Config {
	return Config{NumRel: 2, In: 4, Hidden: 8, Layers: 2, Bases: 2, Classes: 2, Seed: 9}
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := chainGraph(rng, 6)
	m := New(modelCfg())
	logits := m.Forward(g)
	if logits.R != 6 || logits.C != 2 {
		t.Fatalf("logits %dx%d", logits.R, logits.C)
	}
}

func TestGradientsNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := chainGraph(rng, 5)
	m := New(modelCfg())
	loss := func() float64 {
		logits := m.Forward(g)
		l, _ := nn.SoftmaxCE(logits, g.Labels)
		return l
	}
	logits := m.Forward(g)
	_, dLogits := nn.SoftmaxCE(logits, g.Labels)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.Backward(g, dLogits)
	// Snapshot per parameter INDEX: layers reuse parameter names.
	analytic := make([][]float64, len(m.Params()))
	for pi, p := range m.Params() {
		analytic[pi] = append([]float64(nil), p.G.D...)
	}
	const eps = 1e-5
	checked := 0
	for pi, p := range m.Params() {
		step := len(p.W.D)/5 + 1
		for i := 0; i < len(p.W.D); i += step {
			old := p.W.D[i]
			p.W.D[i] = old + eps
			lp := loss()
			p.W.D[i] = old - eps
			lm := loss()
			p.W.D[i] = old
			want := (lp - lm) / (2 * eps)
			if math.Abs(want-analytic[pi][i]) > 1e-4 {
				t.Fatalf("%s#%d[%d]: analytic %v numeric %v", p.Name, pi, i, analytic[pi][i], want)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("too few gradient checks: %d", checked)
	}
}

func TestTrainingLearnsRelationalRule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var graphs []*GraphData
	for i := 0; i < 24; i++ {
		graphs = append(graphs, chainGraph(rng, 6+i%4))
	}
	m := New(modelCfg())
	m.Train(graphs, TrainOptions{Epochs: 20, LR: 0.02})
	// Accuracy on fresh graphs must beat the majority baseline.
	correct, total, majority := 0, 0, 0
	for i := 0; i < 6; i++ {
		g := chainGraph(rng, 7)
		pred := m.Predict(g)
		for v := range pred {
			if pred[v] == g.Labels[v] {
				correct++
			}
			if g.Labels[v] == 0 {
				majority++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	base := float64(majority) / float64(total)
	if base < 0.5 {
		base = 1 - base
	}
	if acc <= base {
		t.Fatalf("R-GCN accuracy %.3f did not beat majority %.3f", acc, base)
	}
}

func TestPredictProbsRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := chainGraph(rng, 5)
	m := New(modelCfg())
	probs := m.PredictProbs(g)
	for v := 0; v < probs.R; v++ {
		s := 0.0
		for j := 0; j < probs.C; j++ {
			s += probs.At(v, j)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", v, s)
		}
	}
}

func TestBasisDecompositionShares(t *testing.T) {
	// With B bases and R relations, each layer holds B basis matrices, not R.
	cfg := modelCfg()
	cfg.NumRel = 10
	cfg.Bases = 2
	m := New(cfg)
	nV := 0
	for _, p := range m.Params() {
		if p.Name == "rgcn.V" {
			nV++
		}
	}
	if nV != cfg.Bases*cfg.Layers {
		t.Fatalf("basis matrices = %d, want %d", nV, cfg.Bases*cfg.Layers)
	}
}

func TestEdgesOutOfRangeIgnored(t *testing.T) {
	g := &GraphData{N: 2, X: nn.NewMat(2, 4), Labels: []int{0, 0},
		Edges: []Edge{{Src: 0, Dst: 1, Rel: 99}}}
	m := New(modelCfg())
	// Must not panic.
	m.Forward(g)
}
