// Package synth generates the deterministic synthetic "web" this
// reproduction mines. The paper builds its Attention Ontology from Tencent QQ
// Browser search click logs — proprietary, Chinese, and billions of records.
// This package substitutes a generative world with the same structural
// signals: a category hierarchy, concepts (modifier + class) grouping
// entities, topics (class + trigger) grouping events, and query/click logs
// whose queries and document titles mention the gold phrases with noise
// words, reordering and partial spans. Because the world is generated, every
// downstream task has exact ground truth.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"giant/internal/nlp"
)

// Category is one node of the pre-defined 3-level category hierarchy
// (paper: 1,206 categories; scaled down here).
type Category struct {
	ID     int
	Name   string
	Level  int // 1..3
	Parent int // index into World.Categories, -1 for roots
}

// Entity is a leaf instance (paper: "iPhone XS", "Honda Civic").
type Entity struct {
	ID       int
	Name     string // lower-case surface form, possibly multi-token
	Class    int    // index into World.Classes
	Concepts []int  // concept IDs this entity belongs to (ground-truth isA)
	Category int    // category ID
	NER      nlp.NER
}

// Concept is a modifier+class phrase grouping entities
// (paper: "fuel-efficient cars"). "Detailed" concepts carry a secondary
// modifier that users omit in queries but document titles spell out —
// the query-title conformity GIANT's alignment strategy exploits ("Miyazaki
// movies" in the query vs "Hayao Miyazaki animated film" in titles).
type Concept struct {
	ID       int
	Phrase   string // gold phrase, e.g. "fuel-efficient family cars"
	Short    string // query form, e.g. "fuel-efficient cars" (== Phrase when not detailed)
	Tokens   []string
	Modifier string
	Class    int
	Category int
	Entities []int // ground-truth isA children
}

// Topic is a class-level event pattern (paper: "Singer will have a concert").
type Topic struct {
	ID      int
	Phrase  string // e.g. "singer hold concert"
	Tokens  []string
	Class   int
	Trigger string
	Events  []int
}

// Event is an instantiated topic (paper: "Jay Chou will have a concert"),
// carrying the four event attributes: entities, trigger, time, location.
type Event struct {
	ID       int
	Phrase   string // e.g. "narveta hold concert in veldora 2018"
	Tokens   []string
	Topic    int
	Entities []int // entity IDs involved
	Trigger  string
	Location string // "" if none
	Day      int    // day index within the simulated period
	Category int
}

// Class is an entity class: the head noun shared by its concepts and topics.
type Class struct {
	ID        int
	Noun      string // singular, e.g. "car"
	Plural    string
	Category  int
	Modifiers []string
	Triggers  []string
	NER       nlp.NER
}

// World is the complete generated universe plus its lexicon.
type World struct {
	Config     Config
	Categories []Category
	Classes    []Class
	Concepts   []Concept
	Entities   []Entity
	Topics     []Topic
	Events     []Event
	Locations  []string
	Lexicon    *nlp.Lexicon

	conceptByPhrase map[string]int
	entityByName    map[string]int
	rng             *rand.Rand
}

// Config controls world scale.
type Config struct {
	Seed              int64
	NumClasses        int // entity classes (each yields concepts+topics)
	ModifiersPerClass int
	EntitiesPerClass  int
	ConceptsPerEntity int // how many concepts each entity joins (>=1)
	TopicsPerClass    int
	EventsPerTopic    int
	NumLocations      int
	Days              int // simulated period length (event timestamps)
}

// DefaultConfig is a laptop-scale world: ~40 classes, ~240 concepts,
// ~1200 entities, ~80 topics, ~480 events.
func DefaultConfig() Config {
	return Config{
		Seed:              7,
		NumClasses:        40,
		ModifiersPerClass: 6,
		EntitiesPerClass:  30,
		ConceptsPerEntity: 2,
		TopicsPerClass:    2,
		EventsPerTopic:    6,
		NumLocations:      24,
		Days:              31,
	}
}

// TinyConfig is for unit tests.
func TinyConfig() Config {
	return Config{
		Seed:              1,
		NumClasses:        6,
		ModifiersPerClass: 3,
		EntitiesPerClass:  8,
		ConceptsPerEntity: 2,
		TopicsPerClass:    2,
		EventsPerTopic:    3,
		NumLocations:      6,
		Days:              10,
	}
}

// seedDomains are hand-written anchors; further classes are generated.
// Each row: top-level category, mid category, class noun, modifiers, triggers.
var seedDomains = []struct {
	top, mid, noun string
	modifiers      []string
	triggers       []string
	ner            nlp.NER
}{
	{"technology", "mobile", "phone",
		[]string{"flagship", "budget", "foldable", "waterproof", "gaming", "compact"},
		[]string{"launch event", "explosion incident"}, nlp.NerProduct},
	{"auto", "vehicles", "car",
		[]string{"fuel-efficient", "economy", "family", "luxury", "electric", "offroad"},
		[]string{"recall announcement", "crash test"}, nlp.NerProduct},
	{"entertainment", "film", "movie",
		[]string{"animated", "sci-fi", "superhero", "oscar-winning", "indie", "horror"},
		[]string{"premiere night", "sequel announcement"}, nlp.NerWork},
	{"entertainment", "music", "singer",
		[]string{"pop", "folk", "jazz", "rock", "indie", "award-winning"},
		[]string{"hold concert", "release album"}, nlp.NerPerson},
	{"sports", "athletics", "runner",
		[]string{"long-distance", "sprint", "marathon", "olympic", "veteran", "rookie"},
		[]string{"win marathon", "break record"}, nlp.NerPerson},
	{"entertainment", "television", "series",
		[]string{"crime", "fantasy", "comedy", "documentary", "medical", "period"},
		[]string{"finale broadcast", "renewal announcement"}, nlp.NerWork},
	{"reading", "books", "novel",
		[]string{"detective", "romance", "dystopian", "historical", "graphic", "debut"},
		[]string{"book signing", "adaptation deal"}, nlp.NerWork},
	{"games", "esports", "team",
		[]string{"professional", "amateur", "champion", "underdog", "regional", "legendary"},
		[]string{"win final", "sign player"}, nlp.NerOrg},
	{"finance", "markets", "company",
		[]string{"blue-chip", "startup", "multinational", "state-owned", "listed", "private"},
		[]string{"release earnings", "announce merger"}, nlp.NerOrg},
	{"food", "dining", "restaurant",
		[]string{"family", "vegan", "seafood", "rooftop", "michelin", "riverside"},
		[]string{"open branch", "win award"}, nlp.NerOrg},
}

// GenWorld builds the world for cfg. Generation is fully deterministic in
// cfg.Seed.
func GenWorld(cfg Config) *World {
	w := &World{
		Config:          cfg,
		Lexicon:         nlp.NewLexicon(),
		conceptByPhrase: make(map[string]int),
		entityByName:    make(map[string]int),
		rng:             rand.New(rand.NewSource(cfg.Seed)),
	}
	ng := newNameGen(w.rng)

	// Category hierarchy: roots and mid-levels come from seeds plus
	// generated fillers; classes become third-level categories.
	rootIdx := map[string]int{}
	midIdx := map[string]int{}
	addCat := func(name string, level, parent int) int {
		id := len(w.Categories)
		w.Categories = append(w.Categories, Category{ID: id, Name: name, Level: level, Parent: parent})
		return id
	}
	for _, d := range seedDomains {
		if _, ok := rootIdx[d.top]; !ok {
			rootIdx[d.top] = addCat(d.top, 1, -1)
		}
		key := d.top + "/" + d.mid
		if _, ok := midIdx[key]; !ok {
			midIdx[key] = addCat(d.mid, 2, rootIdx[d.top])
		}
	}

	// Classes: cycle through seeds; beyond the seed count, synthesize new
	// class nouns under generated mid-level categories.
	for c := 0; c < cfg.NumClasses; c++ {
		d := seedDomains[c%len(seedDomains)]
		noun := d.noun
		mods := append([]string(nil), d.modifiers...)
		trigs := append([]string(nil), d.triggers...)
		midKey := d.top + "/" + d.mid
		if c >= len(seedDomains) {
			noun = ng.noun()
			for i := range mods {
				mods[i] = ng.adjective()
			}
			for i := range trigs {
				trigs[i] = ng.verb() + " " + ng.noun()
			}
			mid := ng.noun() + " zone"
			midKey = d.top + "/" + mid
			if _, ok := midIdx[midKey]; !ok {
				midIdx[midKey] = addCat(mid, 2, rootIdx[d.top])
			}
		}
		if len(mods) > cfg.ModifiersPerClass {
			mods = mods[:cfg.ModifiersPerClass]
		}
		for len(mods) < cfg.ModifiersPerClass {
			mods = append(mods, ng.adjective())
		}
		catID := addCat(noun+" "+"category", 3, midIdx[midKey])
		cls := Class{
			ID: c, Noun: noun, Plural: pluralize(noun), Category: catID,
			Modifiers: mods, Triggers: trigs, NER: d.ner,
		}
		w.Classes = append(w.Classes, cls)
		w.Lexicon.Register(noun, nlp.PosNoun, nlp.NerNone)
		w.Lexicon.Register(cls.Plural, nlp.PosNoun, nlp.NerNone)
		for _, m := range mods {
			w.Lexicon.Register(m, nlp.PosAdj, nlp.NerNone)
		}
		for _, t := range trigs {
			parts := strings.Fields(t)
			w.Lexicon.Register(parts[0], nlp.PosVerb, nlp.NerNone)
			for _, p := range parts[1:] {
				w.Lexicon.Register(p, nlp.PosNoun, nlp.NerNone)
			}
		}
	}

	// Locations.
	for i := 0; i < cfg.NumLocations; i++ {
		loc := ng.properName(2)
		w.Locations = append(w.Locations, loc)
		w.Lexicon.Register(loc, nlp.PosPropn, nlp.NerLoc)
	}

	// Concepts: one per (class, modifier). ~40% are "detailed": the gold
	// phrase inserts a second modifier that queries omit.
	for ci := range w.Classes {
		cls := &w.Classes[ci]
		for mi, m := range cls.Modifiers {
			id := len(w.Concepts)
			short := m + " " + cls.Plural
			phrase := short
			if w.rng.Float64() < 0.4 && len(cls.Modifiers) > 1 {
				m2 := cls.Modifiers[(mi+1)%len(cls.Modifiers)]
				phrase = m + " " + m2 + " " + cls.Plural
			}
			con := Concept{
				ID: id, Phrase: phrase, Short: short,
				Tokens:   nlp.Tokenize(phrase),
				Modifier: m, Class: ci, Category: cls.Category,
			}
			w.Concepts = append(w.Concepts, con)
			w.conceptByPhrase[phrase] = id
		}
	}

	// Entities: per class, each joining ConceptsPerEntity concepts.
	clsConcepts := make([][]int, len(w.Classes))
	for i, c := range w.Concepts {
		clsConcepts[c.Class] = append(clsConcepts[c.Class], i)
	}
	for ci := range w.Classes {
		cls := &w.Classes[ci]
		for e := 0; e < cfg.EntitiesPerClass; e++ {
			name := ng.properName(2)
			for _, taken := w.entityByName[name]; taken; _, taken = w.entityByName[name] {
				name = ng.properName(2)
			}
			id := len(w.Entities)
			ent := Entity{ID: id, Name: name, Class: ci, Category: cls.Category, NER: cls.NER}
			pool := clsConcepts[ci]
			k := cfg.ConceptsPerEntity
			if k > len(pool) {
				k = len(pool)
			}
			for _, pi := range w.rng.Perm(len(pool))[:k] {
				cid := pool[pi]
				ent.Concepts = append(ent.Concepts, cid)
				w.Concepts[cid].Entities = append(w.Concepts[cid].Entities, id)
			}
			w.Entities = append(w.Entities, ent)
			w.entityByName[name] = id
			w.Lexicon.Register(name, nlp.PosPropn, cls.NER)
		}
	}

	// Topics and events.
	entsByClass := make([][]int, len(w.Classes))
	for i, e := range w.Entities {
		entsByClass[e.Class] = append(entsByClass[e.Class], i)
	}
	for ci := range w.Classes {
		cls := &w.Classes[ci]
		nt := cfg.TopicsPerClass
		if nt > len(cls.Triggers) {
			nt = len(cls.Triggers)
		}
		for t := 0; t < nt; t++ {
			trig := cls.Triggers[t]
			tid := len(w.Topics)
			phrase := cls.Noun + " " + trig
			top := Topic{
				ID: tid, Phrase: phrase, Tokens: nlp.Tokenize(phrase),
				Class: ci, Trigger: strings.Fields(trig)[0],
			}
			for ev := 0; ev < cfg.EventsPerTopic; ev++ {
				ents := entsByClass[ci]
				if len(ents) == 0 {
					break
				}
				ent := ents[w.rng.Intn(len(ents))]
				loc := ""
				if w.rng.Float64() < 0.7 && len(w.Locations) > 0 {
					loc = w.Locations[w.rng.Intn(len(w.Locations))]
				}
				day := w.rng.Intn(maxInt(cfg.Days, 1))
				ephrase := w.Entities[ent].Name + " " + trig
				if loc != "" {
					ephrase += " in " + loc
				}
				eid := len(w.Events)
				evt := Event{
					ID: eid, Phrase: ephrase, Tokens: nlp.Tokenize(ephrase),
					Topic: tid, Entities: []int{ent}, Trigger: top.Trigger,
					Location: loc, Day: day, Category: cls.Category,
				}
				// ~25% of events involve a second same-class entity
				// (drives the correlate ground truth).
				if w.rng.Float64() < 0.25 {
					other := ents[w.rng.Intn(len(ents))]
					if other != ent {
						evt.Entities = append(evt.Entities, other)
					}
				}
				top.Events = append(top.Events, eid)
				w.Events = append(w.Events, evt)
			}
			w.Topics = append(w.Topics, top)
		}
	}
	return w
}

// ConceptByPhrase returns the ground-truth concept with the given phrase.
func (w *World) ConceptByPhrase(p string) (Concept, bool) {
	id, ok := w.conceptByPhrase[p]
	if !ok {
		return Concept{}, false
	}
	return w.Concepts[id], true
}

// EntityByName returns the ground-truth entity with the given surface name.
func (w *World) EntityByName(n string) (Entity, bool) {
	id, ok := w.entityByName[n]
	if !ok {
		return Entity{}, false
	}
	return w.Entities[id], true
}

// CategoryName returns the name of category id ("" when out of range).
func (w *World) CategoryName(id int) string {
	if id < 0 || id >= len(w.Categories) {
		return ""
	}
	return w.Categories[id].Name
}

// DateOf renders a day index as a date string within the simulated period
// (July 16 – August 15 2019, matching Fig. 6/7's x-axis).
func DateOf(day int) string {
	month, d := 7, 16+day
	if d > 31 {
		month, d = 8, d-31
	}
	return fmt.Sprintf("2019-%02d-%02d", month, d)
}

func pluralize(n string) string {
	switch {
	case strings.HasSuffix(n, "s"):
		return n
	case strings.HasSuffix(n, "y"):
		return n[:len(n)-1] + "ies"
	default:
		return n + "s"
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
