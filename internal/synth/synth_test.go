package synth

import (
	"strings"
	"testing"
)

func tinyWorld(t *testing.T) *World {
	t.Helper()
	return GenWorld(TinyConfig())
}

func TestGenWorldDeterministic(t *testing.T) {
	a := GenWorld(TinyConfig())
	b := GenWorld(TinyConfig())
	if len(a.Concepts) != len(b.Concepts) || len(a.Events) != len(b.Events) {
		t.Fatal("world generation is not deterministic in size")
	}
	for i := range a.Concepts {
		if a.Concepts[i].Phrase != b.Concepts[i].Phrase {
			t.Fatalf("concept %d differs: %q vs %q", i, a.Concepts[i].Phrase, b.Concepts[i].Phrase)
		}
	}
	for i := range a.Entities {
		if a.Entities[i].Name != b.Entities[i].Name {
			t.Fatalf("entity %d differs", i)
		}
	}
}

func TestWorldScales(t *testing.T) {
	cfg := TinyConfig()
	w := GenWorld(cfg)
	if got, want := len(w.Classes), cfg.NumClasses; got != want {
		t.Fatalf("classes = %d, want %d", got, want)
	}
	if got, want := len(w.Concepts), cfg.NumClasses*cfg.ModifiersPerClass; got != want {
		t.Fatalf("concepts = %d, want %d", got, want)
	}
	if got, want := len(w.Entities), cfg.NumClasses*cfg.EntitiesPerClass; got != want {
		t.Fatalf("entities = %d, want %d", got, want)
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	w := tinyWorld(t)
	for _, c := range w.Concepts {
		for _, eid := range c.Entities {
			found := false
			for _, cid := range w.Entities[eid].Concepts {
				if cid == c.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("concept %q lists entity %q but not vice versa", c.Phrase, w.Entities[eid].Name)
			}
		}
	}
	for _, ev := range w.Events {
		top := w.Topics[ev.Topic]
		if ev.Trigger != top.Trigger {
			t.Fatalf("event %q trigger %q != topic trigger %q", ev.Phrase, ev.Trigger, top.Trigger)
		}
		if !strings.Contains(ev.Phrase, w.Entities[ev.Entities[0]].Name) {
			t.Fatalf("event phrase %q missing entity", ev.Phrase)
		}
	}
}

func TestCategoriesThreeLevels(t *testing.T) {
	w := tinyWorld(t)
	levels := map[int]bool{}
	for _, c := range w.Categories {
		levels[c.Level] = true
		if c.Level > 1 && c.Parent < 0 {
			t.Fatalf("non-root category %q has no parent", c.Name)
		}
		if c.Level == 1 && c.Parent != -1 {
			t.Fatalf("root category %q has parent", c.Name)
		}
	}
	for l := 1; l <= 3; l++ {
		if !levels[l] {
			t.Fatalf("missing category level %d", l)
		}
	}
}

func TestLexiconKnowsVocabulary(t *testing.T) {
	w := tinyWorld(t)
	ent := w.Entities[0]
	toks := w.Lexicon.Annotate(ent.Name)
	for _, tok := range toks {
		if tok.NER == 0 {
			t.Fatalf("entity token %q has no NER tag", tok.Text)
		}
	}
	loc := w.Locations[0]
	ltoks := w.Lexicon.Annotate(loc)
	for _, tok := range ltoks {
		if tok.NER.String() != "LOC" {
			t.Fatalf("location token %q NER = %v", tok.Text, tok.NER)
		}
	}
}

func TestGenerateLogCoversWorld(t *testing.T) {
	w := tinyWorld(t)
	log := w.GenerateLog(LogConfig{Seed: 2, QueriesPerAspect: 2, DocsPerAspect: 2, MaxClicks: 10, NumSessions: 10})
	if len(log.Docs) == 0 || len(log.Records) == 0 {
		t.Fatal("empty log")
	}
	// Every concept must appear in at least one query.
	queries := map[string]bool{}
	for _, r := range log.Records {
		queries[r.Query] = true
	}
	found := 0
	for _, c := range w.Concepts {
		for q := range queries {
			if strings.Contains(q, c.Phrase) {
				found++
				break
			}
		}
	}
	if found < len(w.Concepts)/2 {
		t.Fatalf("only %d/%d concepts appear in queries", found, len(w.Concepts))
	}
	// Docs carry provenance.
	cDocs, eDocs := 0, 0
	for _, d := range log.Docs {
		if d.ConceptID >= 0 {
			cDocs++
		}
		if d.EventID >= 0 {
			eDocs++
		}
		if d.ConceptID >= 0 && d.EventID >= 0 {
			t.Fatal("doc has both concept and event provenance")
		}
	}
	if cDocs == 0 || eDocs == 0 {
		t.Fatalf("missing provenance: %d concept docs, %d event docs", cDocs, eDocs)
	}
}

func TestSessionsStructure(t *testing.T) {
	w := tinyWorld(t)
	log := w.GenerateLog(LogConfig{Seed: 3, QueriesPerAspect: 2, DocsPerAspect: 2, MaxClicks: 5, NumSessions: 25})
	if len(log.Sessions) != 25 {
		t.Fatalf("sessions = %d", len(log.Sessions))
	}
	for _, s := range log.Sessions {
		if len(s.Queries) != 2 {
			t.Fatalf("session has %d queries", len(s.Queries))
		}
	}
}

func TestConceptExamplesGold(t *testing.T) {
	w := tinyWorld(t)
	ex := w.ConceptExamples(20, 9)
	if len(ex) != 20 {
		t.Fatalf("examples = %d", len(ex))
	}
	for _, e := range ex {
		if e.Kind != "concept" || len(e.GoldTokens) == 0 {
			t.Fatalf("bad example %+v", e)
		}
		if len(e.Queries) < 2 || len(e.Titles) < 2 {
			t.Fatalf("example too small: %d queries %d titles", len(e.Queries), len(e.Titles))
		}
		if len(e.Clicks) != len(e.Titles) {
			t.Fatal("clicks must align with titles")
		}
		// Gold tokens must be recoverable from the cluster text.
		text := strings.Join(e.Queries, " ") + " " + strings.Join(e.Titles, " ")
		for _, g := range e.GoldTokens {
			if !strings.Contains(text, g) {
				t.Fatalf("gold token %q absent from cluster", g)
			}
		}
	}
}

func TestEventExamplesGoldAndKeyLabels(t *testing.T) {
	w := tinyWorld(t)
	ex := w.EventExamples(20, 10)
	for _, e := range ex {
		if e.Kind != "event" {
			t.Fatal("kind")
		}
		if e.Trigger == "" || len(e.EntityNames) == 0 {
			t.Fatalf("event example missing attributes: %+v", e)
		}
		// KeyLabelOf must be consistent.
		entTok := strings.Fields(e.EntityNames[0])[0]
		if e.KeyLabelOf(entTok) != KeyEntity {
			t.Fatalf("entity token %q mislabelled", entTok)
		}
		if e.KeyLabelOf(e.Trigger) != KeyTrigger {
			t.Fatal("trigger mislabelled")
		}
		if e.KeyLabelOf("zzz-not-present") != KeyOther {
			t.Fatal("unknown token should be other")
		}
		if e.Location != "" {
			locTok := strings.Fields(e.Location)[0]
			if e.KeyLabelOf(locTok) != KeyLocation {
				t.Fatal("location mislabelled")
			}
		}
	}
}

func TestSplitRatios(t *testing.T) {
	w := tinyWorld(t)
	ex := w.ConceptExamples(50, 11)
	train, dev, test := Split(ex)
	if len(train) != 40 || len(dev) != 5 || len(test) != 5 {
		t.Fatalf("split = %d/%d/%d", len(train), len(dev), len(test))
	}
}

func TestDateOf(t *testing.T) {
	if DateOf(0) != "2019-07-16" {
		t.Fatalf("DateOf(0) = %s", DateOf(0))
	}
	if DateOf(30) != "2019-08-15" {
		t.Fatalf("DateOf(30) = %s", DateOf(30))
	}
}

func TestPluralize(t *testing.T) {
	cases := map[string]string{"car": "cars", "series": "series", "company": "companies"}
	for in, want := range cases {
		if got := pluralize(in); got != want {
			t.Fatalf("pluralize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestKeyClassString(t *testing.T) {
	if KeyEntity.String() != "entity" || KeyOther.String() != "other" {
		t.Fatal("KeyClass String broken")
	}
}
