package synth

import "math/rand"

// nameGen produces pronounceable pseudo-words so generated entities,
// locations and extra classes never collide with real vocabulary. All draws
// come from the world's seeded RNG, keeping generation deterministic.
type nameGen struct {
	rng  *rand.Rand
	used map[string]bool
}

func newNameGen(rng *rand.Rand) *nameGen {
	return &nameGen{rng: rng, used: make(map[string]bool)}
}

var (
	onsets  = []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "dr", "kr", "pl", "st", "tr"}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "or", "an", "el", "ar"}
	codas   = []string{"", "", "n", "r", "l", "s", "x", "th", "m"}
	adjSufs = []string{"ish", "ive", "ous", "al", "able"}
	verbs   = []string{"launch", "reveal", "host", "cancel", "expand", "merge", "upgrade", "tour", "debut", "retire"}
)

func (g *nameGen) syllable() string {
	return onsets[g.rng.Intn(len(onsets))] + vowels[g.rng.Intn(len(vowels))] + codas[g.rng.Intn(len(codas))]
}

func (g *nameGen) word(minSyl, maxSyl int) string {
	for {
		n := minSyl + g.rng.Intn(maxSyl-minSyl+1)
		s := ""
		for i := 0; i < n; i++ {
			s += g.syllable()
		}
		if !g.used[s] && len(s) >= 3 {
			g.used[s] = true
			return s
		}
	}
}

// noun returns a fresh pseudo-noun.
func (g *nameGen) noun() string { return g.word(2, 3) }

// adjective returns a fresh pseudo-adjective.
func (g *nameGen) adjective() string { return g.word(1, 2) + adjSufs[g.rng.Intn(len(adjSufs))] }

// verb returns one of a closed set of real verbs (so POS tagging is stable).
func (g *nameGen) verb() string { return verbs[g.rng.Intn(len(verbs))] }

// properName returns an n-token proper name ("brand model" style).
func (g *nameGen) properName(n int) string {
	s := g.word(2, 3)
	for i := 1; i < n; i++ {
		s += " " + g.word(1, 2)
	}
	return s
}
