package synth

import (
	"math/rand"
	"strings"
)

// KeyClass labels a token's role in an event phrase — the 4-class node
// classification task of §3.2 / Table 7.
type KeyClass uint8

// Key element classes (entity / trigger / location / other).
const (
	KeyOther KeyClass = iota
	KeyEntity
	KeyTrigger
	KeyLocation
	NumKeyClasses = 4
)

// String names the class.
func (k KeyClass) String() string {
	switch k {
	case KeyEntity:
		return "entity"
	case KeyTrigger:
		return "trigger"
	case KeyLocation:
		return "location"
	default:
		return "other"
	}
}

// MiningExample is one row of the Concept Mining Dataset (CMD) or Event
// Mining Dataset (EMD): a query-doc cluster plus the gold phrase (and, for
// events, per-token key-element labels).
type MiningExample struct {
	Queries    []string
	Titles     []string
	Clicks     []int // per title, descending (titles are pre-sorted by CTR)
	GoldTokens []string
	Kind       string // "concept" or "event"

	// Event-only ground truth.
	EntityNames []string
	Trigger     string
	Location    string
	Day         int

	// Back-references into the world.
	ConceptID int
	EventID   int
	Category  int
}

// Gold returns the gold phrase as a string.
func (m *MiningExample) Gold() string { return strings.Join(m.GoldTokens, " ") }

// KeyLabelOf returns the key-element class of a token in this (event)
// example.
func (m *MiningExample) KeyLabelOf(tok string) KeyClass {
	for _, e := range m.EntityNames {
		for _, et := range strings.Fields(e) {
			if tok == et {
				return KeyEntity
			}
		}
	}
	if tok == m.Trigger {
		return KeyTrigger
	}
	for _, lt := range strings.Fields(m.Location) {
		if tok == lt {
			return KeyLocation
		}
	}
	return KeyOther
}

// ConceptExamples builds n CMD examples (multiple distinct template draws per
// concept when n exceeds the concept count).
func (w *World) ConceptExamples(n int, seed int64) []MiningExample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]MiningExample, 0, n)
	for i := 0; i < n; i++ {
		con := &w.Concepts[i%len(w.Concepts)]
		cls := &w.Classes[con.Class]
		// Queries carry the short form; titles carry the full gold phrase.
		qrepl := map[string]string{"c": con.Short, "p": cls.Plural, "m": con.Modifier}

		qIdx := rng.Perm(len(conceptQueryTemplates))
		nq := 2 + rng.Intn(3)
		queries := make([]string, 0, nq)
		for _, qi := range qIdx[:nq] {
			queries = append(queries, fillTemplate(conceptQueryTemplates[qi], qrepl))
		}
		tIdx := rng.Perm(len(conceptTitleTemplates))
		nt := 2 + rng.Intn(3)
		// Guarantee at least one title that spells out the full gold phrase
		// (templates 0-3 contain {c}) — the query-title conformity GIANT
		// relies on: the concept is always mentioned by some clicked title.
		hasFull := false
		for _, ti := range tIdx[:nt] {
			if ti <= 3 {
				hasFull = true
			}
		}
		if !hasFull {
			tIdx[0] = rng.Intn(4)
		}
		titles := make([]string, 0, nt)
		clicks := make([]int, 0, nt)
		for k, ti := range tIdx[:nt] {
			e1, e2 := w.pickConceptEntities(rng, con)
			r2 := map[string]string{"c": con.Phrase, "p": cls.Plural, "m": con.Modifier, "e": e1.name, "e2": e2.name}
			titles = append(titles, fillTemplate(conceptTitleTemplates[ti], r2))
			clicks = append(clicks, 50-10*k+rng.Intn(5))
		}
		out = append(out, MiningExample{
			Queries: queries, Titles: titles, Clicks: clicks,
			GoldTokens: append([]string(nil), con.Tokens...),
			Kind:       "concept", ConceptID: con.ID, Category: con.Category,
		})
	}
	return out
}

// EventExamples builds n EMD examples.
func (w *World) EventExamples(n int, seed int64) []MiningExample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]MiningExample, 0, n)
	for i := 0; i < n; i++ {
		evt := &w.Events[i%len(w.Events)]
		top := &w.Topics[evt.Topic]
		cls := &w.Classes[top.Class]
		ent := &w.Entities[evt.Entities[0]]
		trig := cls.Triggers[indexOfTrigger(cls, top)]
		loc := evt.Location
		if loc == "" {
			loc = "the capital"
		}
		repl := map[string]string{"e": ent.Name, "t": trig, "l": loc, "ev": evt.Phrase}

		repl["e2"] = w.distractorEntity(rng, evt)
		qIdx := rng.Perm(len(eventQueryTemplates))
		nq := 2 + rng.Intn(2)
		queries := make([]string, 0, nq)
		for _, qi := range qIdx[:nq] {
			queries = append(queries, fillTemplate(eventQueryTemplates[qi], repl))
		}
		tIdx := rng.Perm(len(eventTitleTemplates))
		nt := 2 + rng.Intn(3)
		titles := make([]string, 0, nt)
		clicks := make([]int, 0, nt)
		for k, ti := range tIdx[:nt] {
			titles = append(titles, fillTemplate(eventTitleTemplates[ti], repl))
			clicks = append(clicks, 50-10*k+rng.Intn(5))
		}
		names := make([]string, 0, len(evt.Entities))
		for _, eid := range evt.Entities {
			names = append(names, w.Entities[eid].Name)
		}
		out = append(out, MiningExample{
			Queries: queries, Titles: titles, Clicks: clicks,
			GoldTokens:  append([]string(nil), evt.Tokens...),
			Kind:        "event",
			EntityNames: names, Trigger: evt.Trigger, Location: evt.Location,
			Day: evt.Day, EventID: evt.ID, Category: evt.Category,
		})
	}
	return out
}

// Split partitions examples into train/dev/test by the paper's 80/10/10.
func Split(ex []MiningExample) (train, dev, test []MiningExample) {
	n := len(ex)
	a, b := n*8/10, n*9/10
	return ex[:a], ex[a:b], ex[b:]
}
