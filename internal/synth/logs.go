package synth

import (
	"math/rand"
	"strconv"
	"strings"
)

// Doc is one clickable document in the synthetic search log.
type Doc struct {
	ID       int
	Title    string
	Content  string // body text (entity mentions for the linking classifier)
	Category int    // ground-truth category ID
	Entities []int  // entity IDs mentioned
	Day      int
	// Ground-truth provenance for tagging-precision evaluation: the concept
	// or event this document was generated about (-1 when not applicable).
	ConceptID int
	EventID   int
}

// Record is one (query, doc, clicks) observation in the click log.
type Record struct {
	Query  string
	DocID  int
	Clicks int
	Day    int
}

// Session is one user's consecutive query sequence. Consecutive
// concept→entity query pairs are the positive-signal source for the
// concept-entity isA classifier (paper Fig. 4).
type Session struct {
	UserID  int
	Queries []string
}

// Log is a complete synthetic search click log.
type Log struct {
	Docs     []Doc
	Records  []Record
	Sessions []Session

	// ConceptStartDay[i] is the first day concept i shows up in queries —
	// drives the "grow/day" row of Table 1.
	ConceptStartDay []int
}

// LogConfig controls click-log scale.
type LogConfig struct {
	Seed             int64
	QueriesPerAspect int // query variants per concept/event
	DocsPerAspect    int // clicked docs per concept/event
	MaxClicks        int
	NumSessions      int
}

// DefaultLogConfig is laptop scale.
func DefaultLogConfig() LogConfig {
	return LogConfig{Seed: 11, QueriesPerAspect: 4, DocsPerAspect: 4, MaxClicks: 40, NumSessions: 400}
}

// conceptQueryTemplates expand a concept phrase into user-style queries.
// {c} = concept phrase, {p} = class plural, {m} = modifier. The first four
// are "strong" (full concept, contiguous); the rest are the weak/reordered/
// partial phrasings real query logs are full of — pattern matching and
// single-query taggers degrade on them while GCTSP-Net recovers the phrase
// from the whole cluster.
var conceptQueryTemplates = []string{
	"best {c}",
	"what are the {c} ?",
	"top 10 {c}",
	"{c} list",
	"recommended {p}",
	"which {p} are {m} ?",
	"best {p} 2019",
	"{m} and reliable {p}",
}

// conceptTitleTemplates expand a concept into document titles. {e}/{e2} are
// entity names. Titles deliberately insert extra tokens inside or around the
// gold span, split it, or reorder it — the QTIG characteristics of §3.1 and
// the noise that separates T-LSTM-CRF from Q-LSTM-CRF in Table 5.
var conceptTitleTemplates = []string{
	"the famous {c} of the year",
	"review : {e} , a {c} pick",
	"top {c} : {e} and {e2}",
	"what {c} to choose ? {e} review",
	"{m} and popular {p} you should know",
	"{e} vs {e2} : worth it for fans of {p} ?",
	"all about {p} : why {m} models win",
}

// eventQueryTemplates expand an event. {e} entity, {t} trigger phrase,
// {l} location, {ev} full event phrase.
var eventQueryTemplates = []string{
	"{e} {t}",
	"{ev}",
	"{e} {t} news",
	"why {e} {t} ?",
	"{e} latest news today",
}

// eventTitleTemplates produce multi-clause titles; CoverRank splits them at
// punctuation into subtitles. Several omit the location or split the gold
// span, so single-title taggers miss attributes the full cluster carries.
var eventTitleTemplates = []string{
	"breaking : {ev} , fans react",
	"{e} reportedly {t} this week",
	"why {ev} , what we know so far",
	"{e2} watches closely as {e} {t}",
	"{e} {t} — live updates from {l}",
	"official : {ev} confirmed",
}

func fillTemplate(t string, repl map[string]string) string {
	for k, v := range repl {
		t = strings.ReplaceAll(t, "{"+k+"}", v)
	}
	return strings.Join(strings.Fields(t), " ")
}

// GenerateLog emits a click log covering every concept and event in the
// world, with click counts skewed toward earlier templates (head queries).
func (w *World) GenerateLog(cfg LogConfig) *Log {
	rng := rand.New(rand.NewSource(cfg.Seed))
	log := &Log{ConceptStartDay: make([]int, len(w.Concepts))}

	gold := struct{ concept, event int }{-1, -1}
	addDoc := func(title, content string, cat int, ents []int, day int) int {
		id := len(log.Docs)
		log.Docs = append(log.Docs, Doc{
			ID: id, Title: title, Content: content, Category: cat,
			Entities: ents, Day: day,
			ConceptID: gold.concept, EventID: gold.event,
		})
		return id
	}

	days := maxInt(w.Config.Days, 1)
	for ci := range w.Concepts {
		con := &w.Concepts[ci]
		cls := &w.Classes[con.Class]
		start := rng.Intn(days)
		log.ConceptStartDay[ci] = start
		gold.concept, gold.event = ci, -1
		// Queries use the short form; titles spell out the full phrase.
		repl := map[string]string{"c": con.Short, "p": cls.Plural, "m": con.Modifier}

		nq := minInt(cfg.QueriesPerAspect, len(conceptQueryTemplates))
		queries := make([]string, 0, nq)
		for qi := 0; qi < nq; qi++ {
			queries = append(queries, fillTemplate(conceptQueryTemplates[qi], repl))
		}
		nd := minInt(cfg.DocsPerAspect, len(conceptTitleTemplates))
		docIDs := make([]int, 0, nd)
		for di := 0; di < nd; di++ {
			e1, e2 := w.pickConceptEntities(rng, con)
			r2 := map[string]string{"c": con.Phrase, "p": cls.Plural, "m": con.Modifier, "e": e1.name, "e2": e2.name}
			title := fillTemplate(conceptTitleTemplates[di], r2)
			content := w.conceptDocContent(rng, con, e1.id, e2.id)
			docIDs = append(docIDs, addDoc(title, content, con.Category, []int{e1.id, e2.id}, start))
		}
		for qi, q := range queries {
			for di, d := range docIDs {
				// Head query/doc pairs get more clicks; every pair gets >=1.
				clicks := 1 + rng.Intn(cfg.MaxClicks)/(1+qi+di)
				log.Records = append(log.Records, Record{Query: q, DocID: d, Clicks: clicks, Day: start})
			}
		}
	}

	for ei := range w.Events {
		evt := &w.Events[ei]
		gold.concept, gold.event = -1, ei
		top := &w.Topics[evt.Topic]
		cls := &w.Classes[top.Class]
		ent := &w.Entities[evt.Entities[0]]
		trig := cls.Triggers[indexOfTrigger(cls, top)]
		loc := evt.Location
		if loc == "" {
			loc = w.Locations[rng.Intn(maxInt(len(w.Locations), 1))]
		}
		repl := map[string]string{"e": ent.Name, "t": trig, "l": loc, "ev": evt.Phrase,
			"e2": w.distractorEntity(rng, evt)}

		nq := minInt(cfg.QueriesPerAspect, len(eventQueryTemplates))
		queries := make([]string, 0, nq)
		for qi := 0; qi < nq; qi++ {
			queries = append(queries, fillTemplate(eventQueryTemplates[qi], repl))
		}
		nd := minInt(cfg.DocsPerAspect, len(eventTitleTemplates))
		docIDs := make([]int, 0, nd)
		for di := 0; di < nd; di++ {
			title := fillTemplate(eventTitleTemplates[di], repl)
			content := w.eventDocContent(rng, evt)
			docIDs = append(docIDs, addDoc(title, content, evt.Category, evt.Entities, evt.Day))
		}
		for qi, q := range queries {
			for di, d := range docIDs {
				clicks := 1 + rng.Intn(cfg.MaxClicks)/(1+qi+di)
				log.Records = append(log.Records, Record{Query: q, DocID: d, Clicks: clicks, Day: evt.Day})
			}
		}
	}

	// User sessions: 60% contain a concept query followed by an entity query
	// where the entity truly belongs to the concept (positive signal); the
	// rest pair a concept with an unrelated same-category entity (noise the
	// classifier must reject).
	for s := 0; s < cfg.NumSessions; s++ {
		if len(w.Concepts) == 0 || len(w.Entities) == 0 {
			break
		}
		con := &w.Concepts[rng.Intn(len(w.Concepts))]
		var entName string
		if rng.Float64() < 0.6 && len(con.Entities) > 0 {
			entName = w.Entities[con.Entities[rng.Intn(len(con.Entities))]].Name
		} else {
			entName = w.Entities[rng.Intn(len(w.Entities))].Name
		}
		log.Sessions = append(log.Sessions, Session{
			UserID:  s,
			Queries: []string{con.Phrase, entName},
		})
	}
	return log
}

type pickedEntity struct {
	id   int
	name string
}

func (w *World) pickConceptEntities(rng *rand.Rand, con *Concept) (pickedEntity, pickedEntity) {
	pick := func() pickedEntity {
		if len(con.Entities) > 0 {
			id := con.Entities[rng.Intn(len(con.Entities))]
			return pickedEntity{id, w.Entities[id].Name}
		}
		id := rng.Intn(len(w.Entities))
		return pickedEntity{id, w.Entities[id].Name}
	}
	a := pick()
	b := pick()
	for i := 0; i < 4 && b.id == a.id; i++ {
		b = pick()
	}
	return a, b
}

// conceptDocContent writes a small body mentioning the concept's entities in
// sentences that signal membership — the context the concept-entity
// classifier learns from.
func (w *World) conceptDocContent(rng *rand.Rand, con *Concept, ents ...int) string {
	cls := &w.Classes[con.Class]
	var b strings.Builder
	for _, e := range ents {
		name := w.Entities[e].Name
		switch rng.Intn(3) {
		case 0:
			b.WriteString(name + " is a " + con.Modifier + " " + cls.Noun + " . ")
		case 1:
			b.WriteString("among " + con.Phrase + " , " + name + " stands out . ")
		default:
			b.WriteString(name + " ranks high among " + con.Phrase + " . ")
		}
	}
	return strings.TrimSpace(b.String())
}

func (w *World) eventDocContent(rng *rand.Rand, evt *Event) string {
	var b strings.Builder
	b.WriteString(evt.Phrase + " . ")
	for _, e := range evt.Entities {
		b.WriteString(w.Entities[e].Name + " was at the center of the story . ")
	}
	if evt.Location != "" {
		b.WriteString("the scene in " + evt.Location + " drew crowds on day " + strconv.Itoa(evt.Day) + " . ")
	}
	return strings.TrimSpace(b.String())
}

// distractorEntity picks a same-class entity NOT involved in the event —
// the bystander mention that makes event key-element recognition non-trivial
// (a tagger must tell the acting entity from a merely mentioned one).
func (w *World) distractorEntity(rng *rand.Rand, evt *Event) string {
	cls := w.Topics[evt.Topic].Class
	involved := map[int]bool{}
	for _, e := range evt.Entities {
		involved[e] = true
	}
	for tries := 0; tries < 8; tries++ {
		cand := rng.Intn(len(w.Entities))
		if w.Entities[cand].Class == cls && !involved[cand] {
			return w.Entities[cand].Name
		}
	}
	for i := range w.Entities {
		if !involved[i] {
			return w.Entities[i].Name
		}
	}
	return "an onlooker"
}

func indexOfTrigger(cls *Class, top *Topic) int {
	for i, t := range cls.Triggers {
		if strings.Fields(t)[0] == top.Trigger {
			return i
		}
	}
	return 0
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
