package atsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pathValid(order []int, n int) bool {
	if len(order) != n || order[0] != 0 || order[n-1] != n-1 {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func randDist(rng *rand.Rand, n int) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = 1 + rng.Float64()*9
			}
		}
	}
	return d
}

// bruteForce finds the optimal path cost by permutation enumeration.
func bruteForce(dist [][]float64) float64 {
	n := len(dist)
	mid := make([]int, 0, n-2)
	for i := 1; i < n-1; i++ {
		mid = append(mid, i)
	}
	best := 1e18
	var permute func(k int)
	permute = func(k int) {
		if k == len(mid) {
			c := dist[0][mid[0]]
			for i := 0; i+1 < len(mid); i++ {
				c += dist[mid[i]][mid[i+1]]
			}
			c += dist[mid[len(mid)-1]][n-1]
			if c < best {
				best = c
			}
			return
		}
		for i := k; i < len(mid); i++ {
			mid[k], mid[i] = mid[i], mid[k]
			permute(k + 1)
			mid[k], mid[i] = mid[i], mid[k]
		}
	}
	if len(mid) == 0 {
		return dist[0][n-1]
	}
	permute(0)
	return best
}

func TestSolvePathTrivialSizes(t *testing.T) {
	if got := SolvePath(nil); got != nil {
		t.Fatal("empty")
	}
	if got := SolvePath([][]float64{{0}}); len(got) != 1 || got[0] != 0 {
		t.Fatal("n=1")
	}
	got := SolvePath([][]float64{{0, 1}, {1, 0}})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatal("n=2")
	}
}

func TestHeldKarpOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(6) // up to 8 nodes → exact solver
		d := randDist(rng, n)
		order := SolvePath(d)
		if !pathValid(order, n) {
			t.Fatalf("invalid path %v", order)
		}
		got := Cost(d, order)
		want := bruteForce(d)
		if got > want+1e-9 {
			t.Fatalf("n=%d: Held-Karp cost %v > brute-force %v", n, got, want)
		}
	}
}

func TestHeuristicValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := ExactLimit + 5 // force the heuristic path
	d := randDist(rng, n)
	order := SolvePath(d)
	if !pathValid(order, n) {
		t.Fatalf("invalid heuristic path %v", order)
	}
	// The Or-opt improved path must not be worse than plain nearest
	// neighbour.
	nn := nearestNeighbour(d)
	if Cost(d, order) > Cost(d, nn)+1e-9 {
		t.Fatalf("heuristic worse than its own construction: %v > %v", Cost(d, order), Cost(d, nn))
	}
}

func TestSolvePathAlwaysPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		d := randDist(rng, n)
		return pathValid(SolvePath(d), n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAsymmetricCostsRespected(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3 with cheap forward, expensive backward arcs:
	// the solver must output the forward order.
	const big = 100.0
	d := [][]float64{
		{0, 1, big, big},
		{big, 0, 1, big},
		{big, big, 0, 1},
		{big, big, big, 0},
	}
	order := SolvePath(d)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMoveSegment(t *testing.T) {
	order := []int{0, 1, 2, 3, 4, 5}
	moveSegment(order, 1, 2, 4) // move [1,2] after node at index 4
	want := []int{0, 3, 4, 1, 2, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("moveSegment = %v, want %v", order, want)
		}
	}
}
