// Package atsp solves the asymmetric traveling-salesman *path* problem used
// by GCTSP-Net's decoding step (§3.1): find the cheapest route that starts at
// the SOS node (index 0), visits every intermediate node exactly once, and
// ends at the EOS node (index n-1), under an asymmetric distance matrix.
//
// Small instances (the common case — phrases have a handful of tokens) are
// solved exactly with Held-Karp dynamic programming. Larger instances use a
// nearest-neighbour construction refined by Or-opt segment moves, the
// direction-preserving core of Lin-Kernighan-style improvement that remains
// valid for asymmetric costs.
package atsp

// ExactLimit is the largest number of intermediate nodes solved exactly.
const ExactLimit = 12

// SolvePath returns the visiting order of ALL indices 0..n-1 where order[0]
// == 0 and order[n-1] == n-1, minimizing the sum of dist[order[i]][order[i+1]].
// dist must be n×n; dist values may be "infinite" (any large number) for
// unreachable pairs.
func SolvePath(dist [][]float64) []int {
	n := len(dist)
	switch n {
	case 0:
		return nil
	case 1:
		return []int{0}
	case 2:
		return []int{0, 1}
	}
	m := n - 2 // intermediate nodes: 1..n-2
	if m <= ExactLimit {
		return heldKarp(dist)
	}
	order := nearestNeighbour(dist)
	orOpt(dist, order)
	return order
}

// Cost returns the total path cost of an order under dist.
func Cost(dist [][]float64, order []int) float64 {
	c := 0.0
	for i := 0; i+1 < len(order); i++ {
		c += dist[order[i]][order[i+1]]
	}
	return c
}

// heldKarp solves the start→end path exactly: dp[S][j] = min cost reaching
// intermediate j having visited intermediate set S.
func heldKarp(dist [][]float64) []int {
	n := len(dist)
	m := n - 2
	end := n - 1
	const inf = 1e18
	size := 1 << m
	dp := make([][]float64, size)
	par := make([][]int8, size)
	for s := range dp {
		dp[s] = make([]float64, m)
		par[s] = make([]int8, m)
		for j := range dp[s] {
			dp[s][j] = inf
			par[s][j] = -1
		}
	}
	for j := 0; j < m; j++ {
		dp[1<<j][j] = dist[0][j+1]
	}
	for s := 1; s < size; s++ {
		for j := 0; j < m; j++ {
			if s&(1<<j) == 0 || dp[s][j] >= inf {
				continue
			}
			base := dp[s][j]
			for k := 0; k < m; k++ {
				if s&(1<<k) != 0 {
					continue
				}
				ns := s | 1<<k
				c := base + dist[j+1][k+1]
				if c < dp[ns][k] {
					dp[ns][k] = c
					par[ns][k] = int8(j)
				}
			}
		}
	}
	full := size - 1
	best, arg := inf, 0
	for j := 0; j < m; j++ {
		c := dp[full][j] + dist[j+1][end]
		if c < best {
			best, arg = c, j
		}
	}
	order := make([]int, 0, n)
	order = append(order, end)
	s, j := full, arg
	for j >= 0 {
		order = append(order, j+1)
		pj := par[s][j]
		s ^= 1 << j
		j = int(pj)
	}
	order = append(order, 0)
	reverse(order)
	return order
}

func nearestNeighbour(dist [][]float64) []int {
	n := len(dist)
	visited := make([]bool, n)
	order := make([]int, 0, n)
	cur := 0
	order = append(order, 0)
	visited[0] = true
	visited[n-1] = true // end is fixed
	for len(order) < n-1 {
		best, arg := 0.0, -1
		for j := 1; j < n-1; j++ {
			if visited[j] {
				continue
			}
			if arg == -1 || dist[cur][j] < best {
				best, arg = dist[cur][j], j
			}
		}
		if arg == -1 {
			break
		}
		visited[arg] = true
		order = append(order, arg)
		cur = arg
	}
	return append(order, n-1)
}

// orOpt relocates segments of length 1..3 to cheaper positions until no
// improving move exists (asymmetric-safe: segments keep their direction).
func orOpt(dist [][]float64, order []int) {
	n := len(order)
	improved := true
	for iter := 0; improved && iter < 60; iter++ {
		improved = false
		for segLen := 1; segLen <= 3; segLen++ {
			for i := 1; i+segLen < n; i++ {
				// Segment order[i..i+segLen-1]; cannot move endpoints.
				if i+segLen-1 >= n-1 {
					continue
				}
				a, b := order[i-1], order[i]
				c, d := order[i+segLen-1], order[i+segLen]
				removed := dist[a][b] + dist[c][d] - dist[a][d]
				for j := 0; j+1 < n; j++ {
					if j >= i-1 && j <= i+segLen-1 {
						continue
					}
					p, q := order[j], order[j+1]
					added := dist[p][b] + dist[c][q] - dist[p][q]
					if added < removed-1e-9 {
						moveSegment(order, i, segLen, j)
						improved = true
						break
					}
				}
				if improved {
					break
				}
			}
			if improved {
				break
			}
		}
	}
}

// moveSegment relocates order[i:i+segLen] to immediately after position j
// (indices refer to the order BEFORE the move, with j outside the segment).
func moveSegment(order []int, i, segLen, j int) {
	seg := make([]int, segLen)
	copy(seg, order[i:i+segLen])
	rest := make([]int, 0, len(order)-segLen)
	rest = append(rest, order[:i]...)
	rest = append(rest, order[i+segLen:]...)
	// Find the position of the node that was at index j.
	var jNode int
	if j < i {
		jNode = j
	} else {
		jNode = j - segLen
	}
	out := make([]int, 0, len(order))
	out = append(out, rest[:jNode+1]...)
	out = append(out, seg...)
	out = append(out, rest[jNode+1:]...)
	copy(order, out)
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
