// Queryrewrite: the §4 query-understanding application — conceptualize
// concept-bearing queries, rewrite them with member entities, and recommend
// correlated entities for entity queries.
package main

import (
	"fmt"
	"log"

	giant "giant"
	"giant/internal/ontology"
)

func main() {
	sys, err := giant.Build(giant.TinyConfig())
	if err != nil {
		log.Fatal(err)
	}
	u := sys.Query()

	// Concept query: rewrite with instances.
	var conceptPhrase string
	for _, c := range sys.Ontology.Nodes(ontology.Concept) {
		if len(sys.Ontology.Children(c.ID, ontology.IsA)) > 0 {
			conceptPhrase = c.Phrase
			break
		}
	}
	if conceptPhrase != "" {
		q := "best " + conceptPhrase
		a := u.Analyze(q)
		fmt.Printf("query: %q\n  conveys concept %q\n", q, a.Concept)
		for _, r := range a.Rewrites {
			fmt.Printf("  rewrite: %q\n", r)
		}
	}

	// Entity query: recommend correlated entities.
	for _, e := range sys.Ontology.Nodes(ontology.Entity) {
		a := u.Analyze(e.Phrase)
		if len(a.Recommendations) > 0 {
			fmt.Printf("\nquery: %q\n  conveys entity %q\n", e.Phrase, a.Entity)
			for _, r := range a.Recommendations {
				fmt.Printf("  users also searched: %q\n", r)
			}
			break
		}
	}
}
