// Newsfeed: the §5.4 scenario — compare news-feed recommendation CTR with
// and without the Attention Ontology's tag types, and per tag type, on the
// simulated user population (Figures 6 and 7).
package main

import (
	"fmt"

	"giant/internal/rec"
	"giant/internal/synth"
)

func main() {
	world := synth.GenWorld(synth.DefaultConfig())
	sim := rec.NewSimulator(world, rec.DefaultConfig())

	all := sim.RunStrategy([]rec.TagType{
		rec.TagCategory, rec.TagEntity, rec.TagConcept, rec.TagEvent, rec.TagTopic,
	})
	base := sim.RunStrategy([]rec.TagType{rec.TagCategory, rec.TagEntity})

	fmt.Println("Figure 6 — average CTR over the period:")
	fmt.Printf("  all tag types:        %5.2f%%\n", rec.MeanCTR(all))
	fmt.Printf("  category+entity only: %5.2f%%\n", rec.MeanCTR(base))
	fmt.Println("\nDaily CTR:")
	fmt.Printf("  %-12s %10s %10s\n", "date", "all", "cat+ent")
	for i := range all {
		fmt.Printf("  %-12s %9.2f%% %9.2f%%\n", all[i].Date, all[i].CTR(), base[i].CTR())
	}

	fmt.Println("\nFigure 7 — CTR by tag type (mean ± std over days):")
	byType := sim.RunPerTagType()
	for _, t := range []rec.TagType{rec.TagTopic, rec.TagEvent, rec.TagEntity, rec.TagConcept, rec.TagCategory} {
		s := byType[t]
		fmt.Printf("  %-9s %5.2f%% ± %.2f\n", t, rec.MeanCTR(s), rec.StdCTR(s))
	}
}
