// Quickstart: build the Attention Ontology end to end on the tiny synthetic
// world and walk its structure — the minimal GIANT workflow.
package main

import (
	"fmt"
	"log"

	giant "giant"
	"giant/internal/ontology"
)

func main() {
	// Build: generate a search click log, train GCTSP-Net, mine attention
	// phrases (Algorithm 1) and link them into the ontology (§3.2).
	sys, err := giant.Build(giant.TinyConfig())
	if err != nil {
		log.Fatal(err)
	}

	st := sys.Ontology.ComputeStats()
	fmt.Println("Attention Ontology built:")
	for _, t := range []string{"category", "concept", "entity", "topic", "event"} {
		fmt.Printf("  %-9s %4d nodes\n", t, st.NodesByType[t])
	}
	for _, t := range []string{"isA", "involve", "correlate"} {
		fmt.Printf("  %-9s %4d edges\n", t, st.EdgesByType[t])
	}

	// Walk one concept: its category parents and entity instances.
	for _, c := range sys.Ontology.Nodes(ontology.Concept) {
		ents := sys.Ontology.Children(c.ID, ontology.IsA)
		if len(ents) == 0 {
			continue
		}
		fmt.Printf("\nconcept %q\n", c.Phrase)
		for _, p := range sys.Ontology.Parents(c.ID, ontology.IsA) {
			fmt.Printf("  isA-parent: %s %q\n", p.Type, p.Phrase)
		}
		for i, e := range ents {
			if i == 3 {
				fmt.Printf("  ... and %d more\n", len(ents)-3)
				break
			}
			fmt.Printf("  instance:   %q\n", e.Phrase)
		}
		break
	}

	// Mined events carry the four event attributes.
	for _, m := range sys.Mined {
		if m.IsEvent && m.Trigger != "" {
			fmt.Printf("\nevent %q\n  trigger %q entities %v location %q day %d\n",
				m.Phrase, m.Trigger, m.Entities, m.Location, m.Day)
			break
		}
	}
}
