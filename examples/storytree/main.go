// Storytree: the §4 story-tree application — mine events from the click
// graph, pick a seed, retrieve correlated events, cluster them and print the
// evolving story structure (the Figure 5 scenario).
package main

import (
	"fmt"
	"log"
	"os"

	giant "giant"
)

func main() {
	sys, err := giant.Build(giant.TinyConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Group mined events by trigger and pick the busiest story.
	byTrigger := map[string][]string{}
	for _, m := range sys.Mined {
		if m.IsEvent && m.Trigger != "" {
			byTrigger[m.Trigger] = append(byTrigger[m.Trigger], m.Phrase)
		}
	}
	var seed string
	best := 0
	for _, phrases := range byTrigger {
		if len(phrases) > best {
			best = len(phrases)
			seed = phrases[0]
		}
	}
	if seed == "" {
		log.Fatal("no mined events with recognized triggers")
	}

	tree, ok := sys.StoryTree(seed)
	if !ok {
		log.Fatalf("seed event %q not found", seed)
	}
	fmt.Println("story tree (Figure 5 style):")
	tree.Render(os.Stdout)

	fmt.Println("\nfollow-up recommendation: a user who read about the first event would next see:")
	events := tree.Events()
	if len(events) > 0 {
		for _, f := range tree.FollowUps(events[0].Day) {
			fmt.Printf("  day %2d  %s\n", f.Day, f.Phrase)
		}
	}
}
